//! The invariant layer: cross-cutting runtime checkers evaluated during
//! event dispatch.
//!
//! An [`Invariant`] sees two kinds of input: *signals* — semantic
//! notifications the engine emits at protocol-relevant moments (a
//! failure's recovery scope, a rejoin being scheduled or completing, an
//! MLC recovery group being chosen) — and *events* — a post-dispatch
//! hook with the tree state after every simulation event. Checkers keep
//! whatever state they need between calls and report [`Violation`]s,
//! which the [`InvariantRegistry`] collects, counts in metrics and
//! emits as `Warn`-level trace events.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rom_obs::{Level, Obs, Subsystem, TraceEvent};
use rom_overlay::{MulticastTree, NodeId};
use rom_sim::SimTime;

/// Why a member was scheduled to rejoin the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejoinCause {
    /// Its parent failed abruptly (it is an orphan subtree root).
    Failure,
    /// It was evicted by a replacement/usurp placement.
    Eviction,
    /// It was displaced by a ROST switch.
    Switch,
    /// Its parent left gracefully and handed it off.
    Graceful,
}

impl RejoinCause {
    /// Stable lowercase name for traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RejoinCause::Failure => "failure",
            RejoinCause::Eviction => "eviction",
            RejoinCause::Switch => "switch",
            RejoinCause::Graceful => "graceful",
        }
    }
}

/// A semantic notification from the engine to the invariant layer.
#[derive(Debug, Clone, Copy)]
pub enum Signal<'a> {
    /// A member failed abruptly. `rejoining` are its orphaned children
    /// (the only members that initiate recovery); `affected` is every
    /// descendant — those deeper than the children are ELN-suppressed
    /// and must *not* initiate their own recovery for this loss.
    FailureScope {
        /// The failed member.
        failed: NodeId,
        /// Orphan subtree roots that will rejoin.
        rejoining: &'a [NodeId],
        /// Every affected descendant (children included).
        affected: &'a [NodeId],
    },
    /// The engine queued `members` for a rejoin attempt.
    RejoinScheduled {
        /// Members with a pending recovery.
        members: &'a [NodeId],
        /// Why they need one.
        cause: RejoinCause,
    },
    /// A member's rejoin attempt is starting.
    RecoveryStart {
        /// The recovering member.
        member: NodeId,
    },
    /// A member's rejoin attempt succeeded; it is attached again.
    Reattached {
        /// The reattached member.
        member: NodeId,
    },
    /// Streaming recovery chose an MLC/random recovery group for a
    /// member that just reattached.
    RecoveryGroupChosen {
        /// The repaired member.
        member: NodeId,
        /// The chosen recovery-group members.
        group: &'a [NodeId],
    },
}

/// One observed violation of a registered invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the invariant that tripped.
    pub invariant: &'static str,
    /// Simulation time of the observation (seconds).
    pub time: f64,
    /// The member at fault, when one is identifiable.
    pub subject: Option<NodeId>,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl Violation {
    fn new(
        invariant: &'static str,
        now: SimTime,
        subject: Option<NodeId>,
        detail: impl Into<String>,
    ) -> Self {
        Violation {
            invariant,
            time: now.as_secs(),
            subject,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t={:.3}] {}: {}", self.time, self.invariant, self.detail)
    }
}

/// A cross-cutting runtime checker.
///
/// Both hooks default to no-ops so an invariant implements only the side
/// it cares about. Checkers must be deterministic: same inputs in the
/// same order, same violations. Invariants are `Send` so a fully-armed
/// simulator can run on a sweep worker thread.
pub trait Invariant: fmt::Debug + Send {
    /// Stable name, used in reports and trace events.
    fn name(&self) -> &'static str;

    /// Reacts to a semantic engine signal.
    fn on_signal(
        &mut self,
        _tree: &MulticastTree,
        _now: SimTime,
        _signal: &Signal<'_>,
    ) -> Vec<Violation> {
        Vec::new()
    }

    /// Inspects the tree after an event was dispatched.
    fn on_event(&mut self, _tree: &MulticastTree, _now: SimTime) -> Vec<Violation> {
        Vec::new()
    }
}

/// Holds the armed invariants and everything they have found.
///
/// The registry is threaded through the engine's dispatch loop: the
/// engine calls [`signal`](Self::signal) at protocol-relevant moments
/// and [`after_event`](Self::after_event) once per dispatched event.
/// Every violation is recorded here, counted under the
/// `chaos.violations` metric and emitted as a `Warn` trace event under
/// [`Subsystem::Chaos`].
#[derive(Debug)]
pub struct InvariantRegistry {
    invariants: Vec<Box<dyn Invariant>>,
    violations: Vec<Violation>,
    stride: u64,
    events_seen: u64,
}

impl Default for InvariantRegistry {
    /// Same as [`InvariantRegistry::new`] (a derived default would set a
    /// zero stride, which `after_event` rejects).
    fn default() -> Self {
        InvariantRegistry::new()
    }
}

impl InvariantRegistry {
    /// An empty registry (stride 1).
    #[must_use]
    pub fn new() -> Self {
        InvariantRegistry {
            invariants: Vec::new(),
            violations: Vec::new(),
            stride: 1,
            events_seen: 0,
        }
    }

    /// A registry armed with every built-in invariant.
    #[must_use]
    pub fn with_all() -> Self {
        let mut registry = InvariantRegistry::new();
        registry.register(Box::new(TreeStructure));
        registry.register(Box::new(DegreeBudget));
        registry.register(Box::new(BtpMonotonic::default()));
        registry.register(Box::new(ElnNoDuplicateRecovery::default()));
        registry.register(Box::new(RecoveryGroupConsistent));
        registry.register(Box::new(CausalScheduling::default()));
        registry
    }

    /// Runs the (possibly expensive) per-event tree checks only every
    /// `stride` events. Signals are always checked. Builder style.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_stride(mut self, stride: u64) -> Self {
        assert!(stride >= 1, "stride must be at least 1");
        self.stride = stride;
        self
    }

    /// Arms one more invariant.
    pub fn register(&mut self, invariant: Box<dyn Invariant>) {
        self.invariants.push(invariant);
    }

    /// Number of armed invariants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// True if no invariant is armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Names of the armed invariants, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.invariants.iter().map(|i| i.name()).collect()
    }

    /// Feeds a semantic signal to every invariant.
    pub fn signal(
        &mut self,
        tree: &MulticastTree,
        now: SimTime,
        signal: &Signal<'_>,
        obs: &mut Obs,
    ) {
        for invariant in &mut self.invariants {
            let found = invariant.on_signal(tree, now, signal);
            record(&mut self.violations, found, obs);
        }
    }

    /// Runs the post-dispatch tree checks (honouring the stride).
    pub fn after_event(&mut self, tree: &MulticastTree, now: SimTime, obs: &mut Obs) {
        self.events_seen += 1;
        if self.events_seen % self.stride != 0 {
            return;
        }
        for invariant in &mut self.invariants {
            let found = invariant.on_event(tree, now);
            record(&mut self.violations, found, obs);
        }
    }

    /// Everything found so far, in discovery order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True if nothing has been found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn record(sink: &mut Vec<Violation>, found: Vec<Violation>, obs: &mut Obs) {
    for violation in found {
        obs.count("chaos.violations", 1);
        if obs.enabled(Subsystem::Chaos, Level::Warn) {
            let mut event = TraceEvent::new(violation.time, Subsystem::Chaos, "invariant_violation")
                .level(Level::Warn)
                .str("invariant", violation.invariant);
            if let Some(subject) = violation.subject {
                event = event.u64("subject", subject.0);
            }
            obs.emit(event);
        }
        sink.push(violation);
    }
}

/// Tree acyclicity, single-parent pointer symmetry, depth consistency —
/// delegated to [`MulticastTree::check_invariants`], which verifies the
/// whole structural story (BFS reachability doubles as the acyclicity
/// proof).
#[derive(Debug, Default, Clone, Copy)]
pub struct TreeStructure;

impl Invariant for TreeStructure {
    fn name(&self) -> &'static str {
        "tree-structure"
    }

    fn on_event(&mut self, tree: &MulticastTree, now: SimTime) -> Vec<Violation> {
        match tree.check_invariants() {
            Ok(()) => Vec::new(),
            Err(e) => vec![Violation::new(self.name(), now, None, e.to_string())],
        }
    }
}

/// Out-degree never exceeds the bandwidth budget: every member serves at
/// most `⌊bandwidth / stream_rate⌋` children.
#[derive(Debug, Default, Clone, Copy)]
pub struct DegreeBudget;

impl Invariant for DegreeBudget {
    fn name(&self) -> &'static str {
        "degree-budget"
    }

    fn on_event(&mut self, tree: &MulticastTree, now: SimTime) -> Vec<Violation> {
        let mut found = Vec::new();
        for (id, ix) in tree.member_entries() {
            let degree = tree.child_count_ix(ix);
            let capacity = tree.capacity_ix(ix);
            if degree > capacity {
                found.push(Violation::new(
                    self.name(),
                    now,
                    Some(id),
                    format!("member {id} serves {degree} children with capacity {capacity}"),
                ));
            }
        }
        found
    }
}

/// BTP monotonicity between switches: a member's bandwidth-time product
/// only grows with age, so between two observations it may never shrink
/// — unless the member's bandwidth itself was changed (the degradation
/// injector does exactly that, legitimately resetting the slope).
#[derive(Debug, Default)]
pub struct BtpMonotonic {
    /// Per member: (bandwidth bits, last observed BTP).
    last: BTreeMap<NodeId, (u64, f64)>,
}

impl Invariant for BtpMonotonic {
    fn name(&self) -> &'static str {
        "btp-monotonic"
    }

    fn on_event(&mut self, tree: &MulticastTree, now: SimTime) -> Vec<Violation> {
        let mut found = Vec::new();
        self.last.retain(|id, _| tree.contains(*id));
        for id in tree.member_ids() {
            let Some(profile) = tree.profile(id) else {
                continue;
            };
            let btp = profile.btp(now);
            let bandwidth_bits = profile.bandwidth.to_bits();
            if let Some(&(prev_bits, prev_btp)) = self.last.get(&id) {
                if prev_bits == bandwidth_bits && btp < prev_btp {
                    found.push(Violation::new(
                        self.name(),
                        now,
                        Some(id),
                        format!("member {id} BTP fell from {prev_btp:.3} to {btp:.3}"),
                    ));
                }
            }
            self.last.insert(id, (bandwidth_bits, btp));
        }
        found
    }
}

/// ELN implies no duplicate recovery for one loss: only members with a
/// pending recovery cause (an orphaned child of a failure, an evictee, a
/// displaced switcher, a graceful hand-off) may start a rejoin; deeper
/// descendants of a failure are ELN-suppressed and must stay passive
/// until a cause of their own arrives.
#[derive(Debug, Default)]
pub struct ElnNoDuplicateRecovery {
    /// Members with an open recovery "ticket".
    open: BTreeSet<NodeId>,
    /// Members currently ELN-suppressed (affected but not rejoining).
    suppressed: BTreeSet<NodeId>,
}

impl Invariant for ElnNoDuplicateRecovery {
    fn name(&self) -> &'static str {
        "eln-no-duplicate-recovery"
    }

    fn on_signal(
        &mut self,
        _tree: &MulticastTree,
        now: SimTime,
        signal: &Signal<'_>,
    ) -> Vec<Violation> {
        match *signal {
            Signal::FailureScope {
                rejoining,
                affected,
                ..
            } => {
                for &m in rejoining {
                    self.suppressed.remove(&m);
                    self.open.insert(m);
                }
                for &m in affected {
                    if !rejoining.contains(&m) && !self.open.contains(&m) {
                        self.suppressed.insert(m);
                    }
                }
                Vec::new()
            }
            Signal::RejoinScheduled { members, .. } => {
                for &m in members {
                    self.suppressed.remove(&m);
                    self.open.insert(m);
                }
                Vec::new()
            }
            Signal::RecoveryStart { member } => {
                if self.open.contains(&member) {
                    return Vec::new();
                }
                let detail = if self.suppressed.contains(&member) {
                    format!("ELN-suppressed member {member} started a duplicate recovery")
                } else {
                    format!("member {member} started recovery with no pending loss")
                };
                vec![Violation::new(self.name(), now, Some(member), detail)]
            }
            Signal::Reattached { member } => {
                self.open.remove(&member);
                self.suppressed.remove(&member);
                Vec::new()
            }
            Signal::RecoveryGroupChosen { .. } => Vec::new(),
        }
    }
}

/// MLC recovery-group membership stays consistent with the tree: group
/// members are distinct, attached, and never the repaired member itself
/// or one of its ancestors (those lost the same packets).
#[derive(Debug, Default, Clone, Copy)]
pub struct RecoveryGroupConsistent;

impl Invariant for RecoveryGroupConsistent {
    fn name(&self) -> &'static str {
        "recovery-group-consistent"
    }

    fn on_signal(
        &mut self,
        tree: &MulticastTree,
        now: SimTime,
        signal: &Signal<'_>,
    ) -> Vec<Violation> {
        let Signal::RecoveryGroupChosen { member, group } = *signal else {
            return Vec::new();
        };
        let mut found = Vec::new();
        if !tree.is_attached(member) {
            found.push(Violation::new(
                self.name(),
                now,
                Some(member),
                format!("recovery group chosen for detached member {member}"),
            ));
            return found;
        }
        let distinct: BTreeSet<NodeId> = group.iter().copied().collect();
        if distinct.len() != group.len() {
            found.push(Violation::new(
                self.name(),
                now,
                Some(member),
                format!("recovery group for {member} contains duplicates: {group:?}"),
            ));
        }
        let ancestors = tree.ancestors(member);
        for &g in group {
            if g == member {
                found.push(Violation::new(
                    self.name(),
                    now,
                    Some(member),
                    format!("member {member} is in its own recovery group"),
                ));
            } else if !tree.is_attached(g) {
                found.push(Violation::new(
                    self.name(),
                    now,
                    Some(g),
                    format!("recovery-group member {g} is not attached"),
                ));
            } else if ancestors.contains(&g) {
                found.push(Violation::new(
                    self.name(),
                    now,
                    Some(g),
                    format!("recovery-group member {g} is an ancestor of {member}"),
                ));
            }
        }
        found
    }
}

/// No event is dispatched in the past: observed dispatch times are
/// monotonically non-decreasing. (The kernel's `schedule` additionally
/// asserts nothing is *scheduled* before `now`; this checker catches any
/// path that would sidestep it.)
#[derive(Debug)]
pub struct CausalScheduling {
    last: f64,
}

impl Default for CausalScheduling {
    fn default() -> Self {
        CausalScheduling {
            last: f64::NEG_INFINITY,
        }
    }
}

impl Invariant for CausalScheduling {
    fn name(&self) -> &'static str {
        "causal-scheduling"
    }

    fn on_event(&mut self, _tree: &MulticastTree, now: SimTime) -> Vec<Violation> {
        let t = now.as_secs();
        if t < self.last {
            let detail = format!("event dispatched at t={t:.6} after t={:.6}", self.last);
            self.last = t;
            return vec![Violation::new(self.name(), now, None, detail)];
        }
        self.last = t;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rom_overlay::{paper_source, Location, MemberProfile};

    fn small_tree() -> MulticastTree {
        let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
        for i in 1..=4u64 {
            let profile = MemberProfile::new(NodeId(i), 4.0, SimTime::ZERO, 1e6, Location(0));
            tree.attach(profile, tree.root()).expect("attach");
        }
        tree
    }

    #[test]
    fn with_all_arms_six_and_starts_clean() {
        let registry = InvariantRegistry::with_all();
        assert_eq!(registry.len(), 6);
        assert!(registry.is_clean());
        assert_eq!(
            registry.names(),
            vec![
                "tree-structure",
                "degree-budget",
                "btp-monotonic",
                "eln-no-duplicate-recovery",
                "recovery-group-consistent",
                "causal-scheduling",
            ]
        );
    }

    #[test]
    fn clean_tree_passes_every_event_check() {
        let tree = small_tree();
        let mut registry = InvariantRegistry::with_all();
        let mut obs = Obs::metrics_only();
        for step in 1..=5 {
            registry.after_event(&tree, SimTime::from_secs(step as f64), &mut obs);
        }
        assert!(registry.is_clean(), "{:?}", registry.violations());
        assert_eq!(obs.snapshot().counter("chaos.violations"), 0);
    }

    #[test]
    fn recovery_without_cause_is_flagged() {
        let tree = small_tree();
        let mut registry = InvariantRegistry::with_all();
        let mut obs = Obs::metrics_only();
        let now = SimTime::from_secs(10.0);
        registry.signal(&tree, now, &Signal::RecoveryStart { member: NodeId(3) }, &mut obs);
        assert_eq!(registry.violations().len(), 1);
        assert_eq!(registry.violations()[0].invariant, "eln-no-duplicate-recovery");
        assert_eq!(obs.snapshot().counter("chaos.violations"), 1);
    }

    #[test]
    fn eln_suppressed_descendant_is_a_duplicate_recovery() {
        let tree = small_tree();
        let mut inv = ElnNoDuplicateRecovery::default();
        let now = SimTime::from_secs(5.0);
        // Failure of some member: child 2 rejoins, descendant 3 is
        // suppressed.
        let scope = Signal::FailureScope {
            failed: NodeId(9),
            rejoining: &[NodeId(2)],
            affected: &[NodeId(2), NodeId(3)],
        };
        assert!(inv.on_signal(&tree, now, &scope).is_empty());
        // The rejoining child may recover (repeatedly — retries are one
        // open ticket).
        let start = Signal::RecoveryStart { member: NodeId(2) };
        assert!(inv.on_signal(&tree, now, &start).is_empty());
        assert!(inv.on_signal(&tree, now, &start).is_empty());
        // The suppressed descendant may not.
        let dup = inv.on_signal(&tree, now, &Signal::RecoveryStart { member: NodeId(3) });
        assert_eq!(dup.len(), 1);
        assert!(dup[0].detail.contains("duplicate"));
        // Once reattached, the ticket closes; a fresh start is again a
        // violation.
        assert!(inv
            .on_signal(&tree, now, &Signal::Reattached { member: NodeId(2) })
            .is_empty());
        let stale = inv.on_signal(&tree, now, &Signal::RecoveryStart { member: NodeId(2) });
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn suppression_lifts_when_a_cause_of_its_own_arrives() {
        let tree = small_tree();
        let mut inv = ElnNoDuplicateRecovery::default();
        let now = SimTime::from_secs(5.0);
        let scope = Signal::FailureScope {
            failed: NodeId(9),
            rejoining: &[NodeId(2)],
            affected: &[NodeId(2), NodeId(3)],
        };
        assert!(inv.on_signal(&tree, now, &scope).is_empty());
        // Node 3's own parent later fails: it becomes a legitimate
        // recoverer.
        let own = Signal::RejoinScheduled {
            members: &[NodeId(3)],
            cause: RejoinCause::Failure,
        };
        assert!(inv.on_signal(&tree, now, &own).is_empty());
        assert!(inv
            .on_signal(&tree, now, &Signal::RecoveryStart { member: NodeId(3) })
            .is_empty());
    }

    #[test]
    fn recovery_group_checks_membership_against_tree() {
        let tree = small_tree();
        let mut inv = RecoveryGroupConsistent;
        let now = SimTime::from_secs(1.0);
        // Clean group: attached siblings.
        let ok = Signal::RecoveryGroupChosen {
            member: NodeId(1),
            group: &[NodeId(2), NodeId(3)],
        };
        assert!(inv.on_signal(&tree, now, &ok).is_empty());
        // Self, duplicate, unknown and ancestor members all trip it.
        let bad = Signal::RecoveryGroupChosen {
            member: NodeId(1),
            group: &[NodeId(1), NodeId(2), NodeId(2), NodeId(99), tree.root()],
        };
        let found = inv.on_signal(&tree, now, &bad);
        assert!(found.len() >= 3, "{found:?}");
    }

    #[test]
    fn causal_scheduling_flags_time_reversal() {
        let tree = small_tree();
        let mut inv = CausalScheduling::default();
        assert!(inv.on_event(&tree, SimTime::from_secs(5.0)).is_empty());
        assert!(inv.on_event(&tree, SimTime::from_secs(5.0)).is_empty());
        let found = inv.on_event(&tree, SimTime::from_secs(4.0));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].invariant, "causal-scheduling");
    }

    #[test]
    fn btp_monotonic_tolerates_bandwidth_change() {
        let mut tree = small_tree();
        let mut inv = BtpMonotonic::default();
        assert!(inv.on_event(&tree, SimTime::from_secs(10.0)).is_empty());
        assert!(inv.on_event(&tree, SimTime::from_secs(20.0)).is_empty());
        // Degrade one member's bandwidth: BTP drops, but because the
        // bandwidth changed the checker accepts the new baseline.
        let orphans = tree.set_bandwidth(NodeId(1), 1.0).expect("member exists");
        assert!(orphans.is_empty());
        assert!(inv.on_event(&tree, SimTime::from_secs(21.0)).is_empty());
        assert!(inv.on_event(&tree, SimTime::from_secs(30.0)).is_empty());
    }

    #[test]
    fn stride_skips_expensive_checks_between_marks() {
        let tree = small_tree();
        let mut registry = InvariantRegistry::new().with_stride(3);
        #[derive(Debug, Default)]
        struct Counter(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl Invariant for Counter {
            fn name(&self) -> &'static str {
                "counter"
            }
            fn on_event(&mut self, _t: &MulticastTree, _n: SimTime) -> Vec<Violation> {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Vec::new()
            }
        }
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        registry.register(Box::new(Counter(std::sync::Arc::clone(&calls))));
        let mut obs = Obs::disabled();
        for step in 1..=9 {
            registry.after_event(&tree, SimTime::from_secs(step as f64), &mut obs);
        }
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
    }
}
