//! Wire-level perturbation: seeded message loss, delay and reordering.
//!
//! [`LinkChaos`] is a tiny deterministic oracle the wire harness consults
//! once per frame it is about to deliver. The oracle owns its own
//! [`SimRng`] stream, so perturbing a harness run never disturbs any
//! other randomness in the process, and the same seed always yields the
//! same fate sequence.

use rom_sim::SimRng;

use crate::pathology::{DelaySpikes, GilbertElliott};

/// Probabilities for the per-frame perturbation draw.
///
/// The three probabilities partition the unit interval; whatever is left
/// over is the clean-delivery probability, so their sum must be ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkChaosConfig {
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is held back for a few delivery steps.
    pub delay_prob: f64,
    /// Maximum hold-back, in delivery steps (≥ 1); the actual delay is
    /// drawn uniformly from `1..=max_delay_steps`.
    pub max_delay_steps: u64,
    /// Probability a frame is pushed behind the frames queued after it.
    pub reorder_prob: f64,
}

impl LinkChaosConfig {
    /// Mild perturbation: 2% loss, 5% delay (up to 4 steps), 5% reorder.
    #[must_use]
    pub fn light() -> Self {
        LinkChaosConfig {
            drop_prob: 0.02,
            delay_prob: 0.05,
            max_delay_steps: 4,
            reorder_prob: 0.05,
        }
    }

    /// Hostile network: 10% loss, 15% delay (up to 8 steps), 10% reorder.
    #[must_use]
    pub fn heavy() -> Self {
        LinkChaosConfig {
            drop_prob: 0.10,
            delay_prob: 0.15,
            max_delay_steps: 8,
            reorder_prob: 0.10,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("delay_prob", self.delay_prob),
            ("reorder_prob", self.reorder_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        assert!(
            self.drop_prob + self.delay_prob + self.reorder_prob <= 1.0,
            "perturbation probabilities must sum to at most 1"
        );
        assert!(self.max_delay_steps >= 1, "max_delay_steps must be >= 1");
    }
}

/// The fate assigned to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Deliver normally.
    Deliver,
    /// Drop silently.
    Drop,
    /// Hold back for this many delivery steps.
    Delay(u64),
    /// Requeue behind the currently queued frames.
    Reorder,
}

/// A deterministic per-frame perturbation oracle.
///
/// # Examples
///
/// ```
/// use rom_chaos::{LinkChaos, LinkChaosConfig, LinkFate};
///
/// let mut a = LinkChaos::new(LinkChaosConfig::heavy(), 7);
/// let mut b = LinkChaos::new(LinkChaosConfig::heavy(), 7);
/// let fates: Vec<LinkFate> = (0..64).map(|_| a.classify()).collect();
/// assert_eq!(fates, (0..64).map(|_| b.classify()).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct LinkChaos {
    cfg: LinkChaosConfig,
    /// When set, the drop decision follows this Gilbert–Elliott chain
    /// (stationary rate = `cfg.drop_prob`) instead of an independent
    /// Bernoulli draw; the delay/reorder bands shift with the chain's
    /// per-state threshold but consume the very same single uniform.
    burst: Option<GilbertElliott>,
    /// When set, frames crossing an active spike window are delayed by
    /// a fixed extra hold-back (bufferbloat) without consuming a draw.
    spikes: Option<DelaySpikes>,
    rng: SimRng,
    dropped: u64,
    delayed: u64,
    reordered: u64,
}

impl LinkChaos {
    /// An oracle drawing from the `"link-chaos"` fork of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config probabilities are out of range (see
    /// [`LinkChaosConfig`]).
    #[must_use]
    pub fn new(cfg: LinkChaosConfig, seed: u64) -> Self {
        cfg.validate();
        LinkChaos {
            cfg,
            burst: None,
            spikes: None,
            rng: SimRng::seed_from(seed).fork("link-chaos"),
            dropped: 0,
            delayed: 0,
            reordered: 0,
        }
    }

    /// An oracle whose losses are bursty: a [`GilbertElliott`] chain
    /// with stationary loss rate `cfg.drop_prob` and the given burst
    /// factor, on the **same** `"link-chaos"` RNG fork and draw sequence
    /// as [`LinkChaos::new`]. At `burst_factor = 1` the chain's two
    /// states collapse to `drop_prob` exactly, so the fate sequence is
    /// bit-identical to the uniform oracle — the degenerate-equivalence
    /// guarantee pinned by `tests/pathology_properties.rs`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid, if `burst_factor < 1`, or if the
    /// chain's bad-state loss probability plus the delay and reorder
    /// probabilities exceed 1 (the bands must still partition `[0, 1)`).
    #[must_use]
    pub fn with_burst(cfg: LinkChaosConfig, burst_factor: f64, seed: u64) -> Self {
        let mut oracle = LinkChaos::new(cfg, seed);
        let chain = GilbertElliott::matched(cfg.drop_prob, burst_factor);
        assert!(
            chain.p_loss_bad() + cfg.delay_prob + cfg.reorder_prob <= 1.0,
            "bursty loss probabilities must sum to at most 1 in every state"
        );
        oracle.burst = Some(chain);
        oracle
    }

    /// Adds a periodic bufferbloat schedule, in delivery steps: while a
    /// spike is active (per [`DelaySpikes::active_at`] over the step
    /// count), every frame consulted through
    /// [`classify_at`](Self::classify_at) is held back `extra` steps
    /// without consuming an RNG draw.
    #[must_use]
    pub fn with_spikes(mut self, period_steps: u64, span_steps: u64, extra_steps: u64) -> Self {
        assert!(extra_steps >= 1, "a spike must delay at least one step");
        self.spikes = Some(DelaySpikes::new(
            period_steps as f64,
            span_steps as f64,
            extra_steps as f64,
        ));
        self
    }

    /// Draws the fate for the next frame.
    pub fn classify(&mut self) -> LinkFate {
        let u = self.rng.uniform();
        let drop_prob = match self.burst.as_mut() {
            Some(chain) => {
                let threshold = chain.loss_threshold();
                chain.classify(u);
                threshold
            }
            None => self.cfg.drop_prob,
        };
        if u < drop_prob {
            self.dropped += 1;
            return LinkFate::Drop;
        }
        if u < drop_prob + self.cfg.delay_prob {
            self.delayed += 1;
            let steps = 1 + self.rng.index(self.cfg.max_delay_steps as usize) as u64;
            return LinkFate::Delay(steps);
        }
        if u < drop_prob + self.cfg.delay_prob + self.cfg.reorder_prob {
            self.reordered += 1;
            return LinkFate::Reorder;
        }
        LinkFate::Deliver
    }

    /// Time-aware [`classify`](Self::classify): if a bufferbloat spike
    /// is active at `step`, the frame is deterministically delayed by
    /// the spike's extra hold-back (no draw); otherwise this is exactly
    /// `classify()`. Without a spike schedule the two are
    /// indistinguishable, draw for draw.
    pub fn classify_at(&mut self, step: u64) -> LinkFate {
        if let Some(spikes) = self.spikes {
            #[allow(clippy::cast_precision_loss)]
            if spikes.active_at(step as f64) {
                self.delayed += 1;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                return LinkFate::Delay(spikes.extra as u64);
            }
        }
        self.classify()
    }

    /// Frames dropped so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delayed so far.
    #[must_use]
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Frames reordered so far.
    #[must_use]
    pub fn reordered(&self) -> u64 {
        self.reordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_follow_configured_frequencies() {
        let mut chaos = LinkChaos::new(
            LinkChaosConfig {
                drop_prob: 0.25,
                delay_prob: 0.25,
                max_delay_steps: 3,
                reorder_prob: 0.25,
            },
            42,
        );
        let n = 20_000;
        let mut delivered = 0u64;
        for _ in 0..n {
            match chaos.classify() {
                LinkFate::Deliver => delivered += 1,
                LinkFate::Delay(steps) => assert!((1..=3).contains(&steps)),
                LinkFate::Drop | LinkFate::Reorder => {}
            }
        }
        let quarter = n as f64 / 4.0;
        for count in [chaos.dropped(), chaos.delayed(), chaos.reordered(), delivered] {
            assert!(
                (count as f64 - quarter).abs() < quarter * 0.1,
                "count {count} far from {quarter}"
            );
        }
    }

    #[test]
    fn zero_probabilities_always_deliver() {
        let mut chaos = LinkChaos::new(
            LinkChaosConfig {
                drop_prob: 0.0,
                delay_prob: 0.0,
                max_delay_steps: 1,
                reorder_prob: 0.0,
            },
            1,
        );
        for _ in 0..100 {
            assert_eq!(chaos.classify(), LinkFate::Deliver);
        }
    }

    #[test]
    fn bursty_oracle_holds_the_average_loss_rate() {
        let cfg = LinkChaosConfig {
            drop_prob: 0.1,
            delay_prob: 0.0,
            max_delay_steps: 1,
            reorder_prob: 0.0,
        };
        let mut chaos = LinkChaos::with_burst(cfg, 6.0, 9);
        let n = 50_000;
        for _ in 0..n {
            chaos.classify();
        }
        let rate = chaos.dropped() as f64 / f64::from(n);
        assert!((rate - 0.1).abs() < 0.015, "bursty loss rate {rate}");
    }

    #[test]
    fn spikes_delay_deterministically_without_draws() {
        let cfg = LinkChaosConfig {
            drop_prob: 0.2,
            delay_prob: 0.0,
            max_delay_steps: 1,
            reorder_prob: 0.0,
        };
        let mut spiked = LinkChaos::new(cfg, 5).with_spikes(10, 3, 4);
        let mut plain = LinkChaos::new(cfg, 5);
        for step in 1..=40u64 {
            let fate = spiked.classify_at(step);
            if step % 10 < 3 {
                assert_eq!(fate, LinkFate::Delay(4), "step {step} is inside a spike");
            } else {
                // Outside spikes the time-aware oracle consumes the same
                // draw stream as the plain one.
                assert_eq!(fate, plain.classify(), "step {step}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_probabilities_rejected() {
        let _ = LinkChaos::new(
            LinkChaosConfig {
                drop_prob: 0.6,
                delay_prob: 0.5,
                max_delay_steps: 1,
                reorder_prob: 0.0,
            },
            1,
        );
    }
}
