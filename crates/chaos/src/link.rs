//! Wire-level perturbation: seeded message loss, delay and reordering.
//!
//! [`LinkChaos`] is a tiny deterministic oracle the wire harness consults
//! once per frame it is about to deliver. The oracle owns its own
//! [`SimRng`] stream, so perturbing a harness run never disturbs any
//! other randomness in the process, and the same seed always yields the
//! same fate sequence.

use rom_sim::SimRng;

/// Probabilities for the per-frame perturbation draw.
///
/// The three probabilities partition the unit interval; whatever is left
/// over is the clean-delivery probability, so their sum must be ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkChaosConfig {
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is held back for a few delivery steps.
    pub delay_prob: f64,
    /// Maximum hold-back, in delivery steps (≥ 1); the actual delay is
    /// drawn uniformly from `1..=max_delay_steps`.
    pub max_delay_steps: u64,
    /// Probability a frame is pushed behind the frames queued after it.
    pub reorder_prob: f64,
}

impl LinkChaosConfig {
    /// Mild perturbation: 2% loss, 5% delay (up to 4 steps), 5% reorder.
    #[must_use]
    pub fn light() -> Self {
        LinkChaosConfig {
            drop_prob: 0.02,
            delay_prob: 0.05,
            max_delay_steps: 4,
            reorder_prob: 0.05,
        }
    }

    /// Hostile network: 10% loss, 15% delay (up to 8 steps), 10% reorder.
    #[must_use]
    pub fn heavy() -> Self {
        LinkChaosConfig {
            drop_prob: 0.10,
            delay_prob: 0.15,
            max_delay_steps: 8,
            reorder_prob: 0.10,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("delay_prob", self.delay_prob),
            ("reorder_prob", self.reorder_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1]");
        }
        assert!(
            self.drop_prob + self.delay_prob + self.reorder_prob <= 1.0,
            "perturbation probabilities must sum to at most 1"
        );
        assert!(self.max_delay_steps >= 1, "max_delay_steps must be >= 1");
    }
}

/// The fate assigned to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Deliver normally.
    Deliver,
    /// Drop silently.
    Drop,
    /// Hold back for this many delivery steps.
    Delay(u64),
    /// Requeue behind the currently queued frames.
    Reorder,
}

/// A deterministic per-frame perturbation oracle.
///
/// # Examples
///
/// ```
/// use rom_chaos::{LinkChaos, LinkChaosConfig, LinkFate};
///
/// let mut a = LinkChaos::new(LinkChaosConfig::heavy(), 7);
/// let mut b = LinkChaos::new(LinkChaosConfig::heavy(), 7);
/// let fates: Vec<LinkFate> = (0..64).map(|_| a.classify()).collect();
/// assert_eq!(fates, (0..64).map(|_| b.classify()).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct LinkChaos {
    cfg: LinkChaosConfig,
    rng: SimRng,
    dropped: u64,
    delayed: u64,
    reordered: u64,
}

impl LinkChaos {
    /// An oracle drawing from the `"link-chaos"` fork of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config probabilities are out of range (see
    /// [`LinkChaosConfig`]).
    #[must_use]
    pub fn new(cfg: LinkChaosConfig, seed: u64) -> Self {
        cfg.validate();
        LinkChaos {
            cfg,
            rng: SimRng::seed_from(seed).fork("link-chaos"),
            dropped: 0,
            delayed: 0,
            reordered: 0,
        }
    }

    /// Draws the fate for the next frame.
    pub fn classify(&mut self) -> LinkFate {
        let u = self.rng.uniform();
        if u < self.cfg.drop_prob {
            self.dropped += 1;
            return LinkFate::Drop;
        }
        if u < self.cfg.drop_prob + self.cfg.delay_prob {
            self.delayed += 1;
            let steps = 1 + self.rng.index(self.cfg.max_delay_steps as usize) as u64;
            return LinkFate::Delay(steps);
        }
        if u < self.cfg.drop_prob + self.cfg.delay_prob + self.cfg.reorder_prob {
            self.reordered += 1;
            return LinkFate::Reorder;
        }
        LinkFate::Deliver
    }

    /// Frames dropped so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames delayed so far.
    #[must_use]
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Frames reordered so far.
    #[must_use]
    pub fn reordered(&self) -> u64 {
        self.reordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_follow_configured_frequencies() {
        let mut chaos = LinkChaos::new(
            LinkChaosConfig {
                drop_prob: 0.25,
                delay_prob: 0.25,
                max_delay_steps: 3,
                reorder_prob: 0.25,
            },
            42,
        );
        let n = 20_000;
        let mut delivered = 0u64;
        for _ in 0..n {
            match chaos.classify() {
                LinkFate::Deliver => delivered += 1,
                LinkFate::Delay(steps) => assert!((1..=3).contains(&steps)),
                LinkFate::Drop | LinkFate::Reorder => {}
            }
        }
        let quarter = n as f64 / 4.0;
        for count in [chaos.dropped(), chaos.delayed(), chaos.reordered(), delivered] {
            assert!(
                (count as f64 - quarter).abs() < quarter * 0.1,
                "count {count} far from {quarter}"
            );
        }
    }

    #[test]
    fn zero_probabilities_always_deliver() {
        let mut chaos = LinkChaos::new(
            LinkChaosConfig {
                drop_prob: 0.0,
                delay_prob: 0.0,
                max_delay_steps: 1,
                reorder_prob: 0.0,
            },
            1,
        );
        for _ in 0..100 {
            assert_eq!(chaos.classify(), LinkFate::Deliver);
        }
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_probabilities_rejected() {
        let _ = LinkChaos::new(
            LinkChaosConfig {
                drop_prob: 0.6,
                delay_prob: 0.5,
                max_delay_steps: 1,
                reorder_prob: 0.0,
            },
            1,
        );
    }
}
