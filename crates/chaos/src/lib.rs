//! # rom-chaos: deterministic fault injection + runtime invariant checking
//!
//! The paper's subject is fault *resilience*, so the simulators in this
//! workspace must be exercised by more than the two failure shapes the
//! figures need (lognormal churn and single upstream death). This crate
//! supplies the adversarial side of that bargain, in two halves:
//!
//! - a **scenario layer** ([`Scenario`], [`ChaosAction`], [`Injection`]):
//!   composable, seed-driven injectors for correlated/clustered node
//!   failures, flash-crowd join bursts, flapping membership, bandwidth
//!   degradation over time, and wire-level message loss/delay/reordering
//!   ([`LinkChaos`]);
//! - a **link-pathology layer** ([`GilbertElliott`], [`CapacityTrace`],
//!   [`DelaySpikes`], [`MobileProfile`]): bursty loss with a
//!   matched-average-rate parameterization, time-varying capacity
//!   traces, bufferbloat spikes, and the composite mobile-member
//!   handover profile — deterministic state machines advanced on sim
//!   time, drawing only caller-supplied uniforms;
//! - an **invariant layer** ([`Invariant`], [`InvariantRegistry`]):
//!   cross-cutting checkers evaluated during event dispatch — tree
//!   acyclicity and single-parent, out-degree within the bandwidth
//!   budget, BTP monotonicity between switches, ELN suppression implying
//!   no duplicate recovery for one loss, MLC recovery-group consistency
//!   with the tree, and causal event dispatch.
//!
//! ## Determinism contract
//!
//! Chaos draws randomness exclusively from a dedicated fork of the run's
//! root RNG (`root.fork("chaos")` in the engine; see `rom_sim::SimRng`).
//! Because a fork is a pure function of `(seed, label)` and independent
//! of the parent's consumption, arming a scenario never perturbs the
//! workload, decision or streaming randomness streams — and two runs of
//! the same `(scenario, seed)` are bit-for-bit identical, traces
//! included. The workspace pins that property with an integration test.
//!
//! Violations are reported three ways at once: collected on the registry
//! (for test assertions), counted in the `chaos.violations` metric, and
//! emitted as `Warn`-level trace events under `Subsystem::Chaos`.
//!
//! # Examples
//!
//! ```
//! use rom_chaos::{InvariantRegistry, Scenario};
//!
//! // Every named scenario resolves, parameterised by the measurement
//! // window it should land in.
//! for name in Scenario::NAMES {
//!     let s = Scenario::by_name(name, 300.0, 900.0).expect("known scenario");
//!     assert_eq!(s.name, name);
//! }
//!
//! // A registry armed with every built-in invariant starts clean.
//! let registry = InvariantRegistry::with_all();
//! assert!(registry.is_clean());
//! assert_eq!(registry.len(), 6);
//! ```

mod invariant;
mod link;
mod pathology;
mod scenario;

pub use invariant::{
    BtpMonotonic, CausalScheduling, DegreeBudget, ElnNoDuplicateRecovery, Invariant,
    InvariantRegistry, RecoveryGroupConsistent, RejoinCause, Signal, TreeStructure, Violation,
};
pub use link::{LinkChaos, LinkChaosConfig, LinkFate};
pub use pathology::{
    CapacitySegment, CapacityTrace, DelaySpikes, GilbertElliott, MobileProfile,
};
pub use scenario::{pick_attached, pick_cluster, ChaosAction, Injection, Scenario};

/// Base for ids of members created by chaos injections (flash crowds,
/// flap replacements). Far above anything the workload's sequential id
/// counter reaches, so chaos-born members never collide with — or shift
/// the ids of — workload-born members.
pub const CHAOS_ID_BASE: u64 = 1 << 40;
