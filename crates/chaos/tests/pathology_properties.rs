//! Property-test wall for the link-pathology models.
//!
//! Every test here is pinned to explicit seeds — no wall-clock entropy,
//! no flaky tolerances. The statistical assertions use draw counts large
//! enough that the pinned streams land comfortably inside the bounds;
//! changing a model or the RNG fork discipline is *supposed* to trip
//! them.

use rom_chaos::{
    CapacitySegment, CapacityTrace, DelaySpikes, GilbertElliott, LinkChaos, LinkChaosConfig,
    LinkFate, MobileProfile,
};
use rom_sim::SimRng;

/// Drives `chain` with `frames` uniforms from the `"chaos-link"` fork of
/// `seed` — the same fork label the streaming engine uses for episode
/// loss draws.
fn drive(chain: &mut GilbertElliott, seed: u64, frames: u64) {
    let mut rng = SimRng::seed_from(seed).fork("chaos-link");
    for _ in 0..frames {
        chain.classify(rng.uniform());
    }
}

#[test]
fn empirical_loss_rate_converges_to_the_stationary_rate() {
    // For every (rate, burst factor) pair and every pinned seed, the
    // empirical loss rate over 400k frames sits within 1% (absolute) of
    // the closed-form stationary rate — which `matched` makes exactly
    // the requested average.
    for &(avg_loss, burst_factor) in &[(0.05, 4.0), (0.1, 2.0), (0.2, 8.0)] {
        for &seed in &[3u64, 17, 101] {
            let mut chain = GilbertElliott::matched(avg_loss, burst_factor);
            assert!(
                (chain.stationary_loss_rate() - avg_loss).abs() < 1e-12,
                "matched() must pin the stationary rate to {avg_loss}"
            );
            drive(&mut chain, seed, 400_000);
            let err = (chain.empirical_loss_rate() - avg_loss).abs();
            assert!(
                err < 0.01,
                "rate {avg_loss} β {burst_factor} seed {seed}: empirical \
                 {:.5} drifted {err:.5} from stationary",
                chain.empirical_loss_rate()
            );
        }
    }
}

#[test]
fn burst_lengths_are_geometric() {
    // Burst lengths under the chain are geometric with mean
    // 1 / (1 - p_bad): check the sample mean against the closed form and
    // that the length histogram decays monotonically (modal length 1),
    // both hallmarks of the geometric law.
    let avg_loss = 0.1;
    let burst_factor = 6.0;
    let mut chain = GilbertElliott::matched(avg_loss, burst_factor);
    let expected_mean = chain.mean_burst_len();
    let mut rng = SimRng::seed_from(23).fork("chaos-link");
    let mut bursts: Vec<u64> = Vec::new();
    let mut current = 0u64;
    for _ in 0..600_000 {
        if chain.classify(rng.uniform()) {
            current += 1;
        } else if current > 0 {
            bursts.push(current);
            current = 0;
        }
    }
    assert!(bursts.len() > 5_000, "need many bursts for a stable mean");
    #[allow(clippy::cast_precision_loss)]
    let sample_mean = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
    assert!(
        (sample_mean - expected_mean).abs() < 0.15,
        "sample mean burst {sample_mean:.3} vs closed-form {expected_mean:.3}"
    );
    let mut histogram = [0u64; 8];
    for &len in &bursts {
        let bucket = (len as usize - 1).min(histogram.len() - 1);
        histogram[bucket] += 1;
    }
    // The last bucket is a catch-all tail (length ≥ 8), so the decay
    // check runs over the exact-length buckets only.
    for pair in histogram[..histogram.len() - 1].windows(2) {
        assert!(
            pair[0] >= pair[1],
            "geometric burst-length counts must decay: {histogram:?}"
        );
    }
}

#[test]
fn chain_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut chain = GilbertElliott::matched(0.12, 5.0);
        let mut rng = SimRng::seed_from(seed).fork("chaos-link");
        (0..10_000)
            .map(|_| chain.classify(rng.uniform()))
            .collect::<Vec<bool>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds must diverge");
}

#[test]
fn capacity_traces_stay_positive_and_hit_exact_endpoints() {
    let traces = [
        CapacityTrace::new(vec![
            CapacitySegment::Ramp {
                secs: 10.0,
                from: 1.0,
                to: 0.25,
            },
            CapacitySegment::Step {
                secs: 20.0,
                factor: 0.25,
            },
            CapacitySegment::Ramp {
                secs: 5.0,
                from: 0.25,
                to: 1.0,
            },
        ]),
        CapacityTrace::handover(20.0, 5.0, 10.0, 0.2, 3),
    ];
    for trace in &traces {
        // Endpoints are *bitwise* exact — no float tolerance.
        assert_eq!(trace.factor_at(0.0), trace.start_factor());
        assert_eq!(trace.factor_at(trace.duration()), trace.end_factor());
        // Clamping outside the trace window.
        assert_eq!(trace.factor_at(-5.0), trace.start_factor());
        assert_eq!(trace.factor_at(trace.duration() + 100.0), trace.end_factor());
        // Dense sweep: a capacity factor can hit zero (outage) but never
        // go negative, and ramps stay within their endpoints.
        let steps = 4_000;
        for i in 0..=steps {
            let t = trace.duration() * f64::from(i) / f64::from(steps);
            let f = trace.factor_at(t);
            assert!(f >= 0.0, "factor {f} negative at offset {t}");
            assert!(f <= 1.0, "factor {f} above nominal at offset {t}");
        }
    }
}

#[test]
#[should_panic(expected = "factor")]
fn negative_capacity_factors_are_rejected() {
    let _ = CapacityTrace::new(vec![CapacitySegment::Step {
        secs: 1.0,
        factor: -0.1,
    }]);
}

#[test]
fn delay_spikes_have_exact_window_boundaries() {
    let spikes = DelaySpikes::new(30.0, 10.0, 2.0);
    // [0, 10) of every 30 s period is inside the spike.
    for period_start in [0.0, 30.0, 60.0, 900.0] {
        assert!(spikes.active_at(period_start));
        assert!(spikes.active_at(period_start + 9.999));
        assert!(!spikes.active_at(period_start + 10.0), "span end is open");
        assert!(!spikes.active_at(period_start + 29.999));
    }
    assert!(!spikes.active_at(-0.5), "nothing before the schedule starts");
    assert_eq!(spikes.extra_at(5.0), 2.0);
    assert_eq!(spikes.extra_at(15.0), 0.0);
}

#[test]
fn mobile_profile_composes_all_three_pathologies() {
    let profile = MobileProfile::handover(20.0, 5.0, 10.0, 0.2, 2, 0.15, 8.0, 1.5);
    let trace = &profile.capacity;
    // Two full handover cycles (dwell + ramp-down + outage + ramp-up)
    // plus the trailing clean dwell.
    assert_eq!(trace.duration(), 2.0 * (20.0 + 5.0 + 10.0 + 5.0) + 20.0);
    // Mid-dwell is clean, mid-handover sits at the degraded floor, and
    // the loss chain and bufferbloat spikes carry the requested knobs.
    assert_eq!(trace.factor_at(1.0), 1.0);
    assert_eq!(trace.factor_at(20.0 + 5.0 + 2.0), 0.2);
    assert!((profile.avg_loss - 0.15).abs() < 1e-12);
    assert!((profile.burst_factor - 8.0).abs() < 1e-12);
    assert_eq!(profile.spikes.extra, 1.5);
    // The spike schedule is phase-aligned with the first handover.
    assert_eq!(profile.spike_offset_secs(), 20.0);
}

/// The differential wall: a burst factor of exactly 1 must reproduce the
/// uniform oracle's decisions **bit for bit** — same fork, same draw
/// sequence, same fate for every one of 20k frames — across seeds and
/// across light/heavy/loss-only configs.
#[test]
fn burst_factor_one_is_bitwise_identical_to_uniform_loss() {
    let configs = [
        LinkChaosConfig::light(),
        LinkChaosConfig::heavy(),
        LinkChaosConfig {
            drop_prob: 0.3,
            delay_prob: 0.0,
            max_delay_steps: 1,
            reorder_prob: 0.0,
        },
    ];
    for cfg in configs {
        for &seed in &[1u64, 7, 42, 9_999] {
            let mut uniform = LinkChaos::new(cfg, seed);
            let mut degenerate = LinkChaos::with_burst(cfg, 1.0, seed);
            let fates: Vec<LinkFate> = (0..20_000).map(|_| uniform.classify()).collect();
            let bursty: Vec<LinkFate> = (0..20_000).map(|_| degenerate.classify()).collect();
            assert_eq!(
                fates, bursty,
                "β=1 diverged from uniform (seed {seed}, cfg {cfg:?})"
            );
            assert_eq!(uniform.dropped(), degenerate.dropped());
            assert_eq!(uniform.delayed(), degenerate.delayed());
            assert_eq!(uniform.reordered(), degenerate.reordered());
        }
    }
}

#[test]
fn burst_factor_above_one_changes_clustering_not_the_average() {
    // Sanity companion to the differential test: β > 1 must actually
    // change the fate sequence (else the knob is dead) while holding the
    // long-run loss rate at the uniform oracle's.
    let cfg = LinkChaosConfig {
        drop_prob: 0.1,
        delay_prob: 0.0,
        max_delay_steps: 1,
        reorder_prob: 0.0,
    };
    let n = 200_000u32;
    let mut uniform = LinkChaos::new(cfg, 42);
    let mut bursty = LinkChaos::with_burst(cfg, 8.0, 42);
    let a: Vec<LinkFate> = (0..n).map(|_| uniform.classify()).collect();
    let b: Vec<LinkFate> = (0..n).map(|_| bursty.classify()).collect();
    assert_ne!(a, b, "β=8 must reshuffle the fate sequence");
    let rate = |o: &LinkChaos| o.dropped() as f64 / f64::from(n);
    assert!(
        (rate(&uniform) - rate(&bursty)).abs() < 0.01,
        "matched averages: uniform {:.4} vs bursty {:.4}",
        rate(&uniform),
        rate(&bursty)
    );
}
