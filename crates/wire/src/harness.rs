//! An in-memory protocol harness: real peers, real frames.
//!
//! [`InMemoryNetwork`] hosts a set of [`Peer`] state machines and routes
//! every message between them **through the binary codec** — each send is
//! encoded to bytes and decoded at delivery, so a test driving the
//! harness exercises the exact frames a deployment would put on a socket.
//!
//! The peers implement the message-level behaviours of the paper's
//! protocol: the JOIN/ACCEPT handshake with depth comparison (§3.3), data
//! forwarding down the tree, gap detection with downstream ELN (§4.2),
//! and the chained repair protocol (request → serve or NACK-and-forward,
//! repaired packets delivered to intermediaries too). Tree *optimization*
//! (ROST switching) and the referee bookkeeping live in `rom-rost` and
//! are driven by the simulators; this harness is about validating the
//! wire-visible behaviour.
//!
//! [`InMemoryNetwork::enable_chaos`] adds a deterministic link-chaos
//! layer (`rom-chaos`): frames may be dropped, delayed a few delivery
//! steps, or reordered to the back of the queue — reproducibly from a
//! seed — so protocol loss-recovery paths can be exercised under
//! adversarial-but-replayable link conditions.

use std::collections::{BTreeSet, HashMap, VecDeque};

use bytes::BytesMut;
use rom_chaos::{LinkChaos, LinkChaosConfig, LinkFate};
use rom_overlay::{Location, NodeId};

use crate::codec::{decode, encode};
use crate::message::{JoinRefusal, Message};

/// One protocol participant.
#[derive(Debug)]
pub struct Peer {
    id: NodeId,
    location: Location,
    capacity: usize,
    parent: Option<NodeId>,
    depth: u32,
    children: Vec<NodeId>,
    /// Highest contiguous sequence received (gap detector input).
    highest_seq: Option<u64>,
    /// Packets held in the local buffer (serves repairs).
    buffer: BTreeSet<u64>,
    /// Sequence numbers learned missing-upstream via ELN.
    eln_missing: BTreeSet<u64>,
    /// True once attached (the source starts attached at depth 0).
    attached: bool,
    /// Harness tick at which the parent was last heard from (data or
    /// heartbeat).
    parent_last_heard: u64,
}

impl Peer {
    /// Creates a peer with the given forwarding capacity.
    #[must_use]
    pub fn new(id: NodeId, location: Location, capacity: usize) -> Self {
        Peer {
            id,
            location,
            capacity,
            parent: None,
            depth: 0,
            children: Vec::new(),
            highest_seq: None,
            buffer: BTreeSet::new(),
            eln_missing: BTreeSet::new(),
            attached: false,
            parent_last_heard: 0,
        }
    }

    /// This peer's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current parent, if attached below the source.
    #[must_use]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current children.
    #[must_use]
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Layer number (source = 0).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// True once part of the delivery tree.
    #[must_use]
    pub fn is_attached(&self) -> bool {
        self.attached
    }

    /// True if `seq` is in the local buffer.
    #[must_use]
    pub fn has_packet(&self, seq: u64) -> bool {
        self.buffer.contains(&seq)
    }

    /// The peer's underlay attachment point (carried in its JOIN
    /// requests; a transport would use it for proximity decisions).
    #[must_use]
    pub fn location(&self) -> Location {
        self.location
    }

    /// Sequence numbers this peer knows are missing upstream (via ELN).
    #[must_use]
    pub fn eln_missing(&self) -> Vec<u64> {
        self.eln_missing.iter().copied().collect()
    }

    /// Handles one incoming message, returning the messages to send.
    fn handle(&mut self, from: NodeId, msg: Message, tick: u64) -> Vec<(NodeId, Message)> {
        let mut out = Vec::new();
        if Some(from) == self.parent {
            self.parent_last_heard = tick;
        }
        match msg {
            Message::Join { joiner, .. } => {
                if !self.attached {
                    out.push((
                        joiner,
                        Message::JoinReject {
                            reason: JoinRefusal::Detached,
                        },
                    ));
                } else if self.children.len() >= self.capacity {
                    out.push((
                        joiner,
                        Message::JoinReject {
                            reason: JoinRefusal::NoCapacity,
                        },
                    ));
                } else {
                    self.children.push(joiner);
                    out.push((
                        joiner,
                        Message::JoinAccept {
                            parent: self.id,
                            parent_depth: self.depth,
                        },
                    ));
                }
            }
            Message::JoinAccept {
                parent,
                parent_depth,
            } => {
                if !self.attached {
                    self.parent = Some(parent);
                    self.depth = parent_depth + 1;
                    self.attached = true;
                    self.parent_last_heard = tick;
                }
                // A second concurrent accept is ignored; a real client
                // would send a cancel, which the paper leaves implicit.
            }
            Message::JoinReject { .. } => {
                // The driver retries elsewhere.
            }
            Message::Data { seq, payload } => {
                // Gap detection: anything between the last contiguous
                // sequence and this one was lost upstream of the children.
                if let Some(prev) = self.highest_seq {
                    if seq > prev + 1 {
                        let missing: Vec<u64> = (prev + 1..seq).collect();
                        for &c in &self.children {
                            out.push((
                                c,
                                Message::Eln {
                                    origin: self.id,
                                    missing: missing.clone(),
                                },
                            ));
                        }
                    }
                }
                self.highest_seq = Some(self.highest_seq.map_or(seq, |p| p.max(seq)));
                self.buffer.insert(seq);
                for &c in &self.children {
                    out.push((
                        c,
                        Message::Data {
                            seq,
                            payload: payload.clone(),
                        },
                    ));
                }
            }
            Message::Eln { missing, .. } => {
                // Record and propagate downstream (§4.2: "The notification
                // packet is further propagated downstream").
                for &s in &missing {
                    self.eln_missing.insert(s);
                }
                for &c in &self.children {
                    out.push((
                        c,
                        Message::Eln {
                            origin: self.id,
                            missing: missing.clone(),
                        },
                    ));
                }
            }
            Message::RepairRequest {
                requester,
                seq_lo,
                seq_hi,
                chain,
            } => {
                let mut unserved = Vec::new();
                for seq in seq_lo..seq_hi {
                    if self.buffer.contains(&seq) {
                        out.push((
                            requester,
                            Message::RepairData {
                                seq,
                                payload: Vec::new(),
                            },
                        ));
                    } else {
                        unserved.push(seq);
                    }
                }
                if !unserved.is_empty() {
                    out.push((
                        requester,
                        Message::RepairNack {
                            from: self.id,
                            seq_lo: unserved[0],
                        },
                    ));
                    if let Some((&next, rest)) = chain.split_first() {
                        // Forward the request for the contiguous unserved
                        // span (§4.2's NACK-and-forward).
                        out.push((
                            next,
                            Message::RepairRequest {
                                requester,
                                seq_lo: unserved[0],
                                seq_hi,
                                chain: rest.to_vec(),
                            },
                        ));
                    }
                }
            }
            Message::RepairData { seq, .. } => {
                self.buffer.insert(seq);
                self.eln_missing.remove(&seq);
            }
            Message::MembershipQuery { from: asker, want } => {
                let mut members: Vec<NodeId> = self.children.clone();
                members.extend(self.parent);
                members.truncate(want as usize);
                out.push((asker, Message::MembershipSample { members }));
            }
            // The remaining messages (locks, referees, heartbeats, gossip)
            // are driven by higher-level components in this workspace; the
            // harness accepts them silently so drivers can exercise the
            // codec path for every variant.
            _ => {
                let _ = from;
            }
        }
        out
    }
}

/// Statistics of one harness run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Frames delivered (each one encoded and decoded).
    pub frames_delivered: u64,
    /// Total encoded bytes moved.
    pub bytes_moved: u64,
    /// Frames dropped because the destination is gone.
    pub frames_to_dead_peers: u64,
    /// Frames dropped by the link-chaos layer.
    pub frames_dropped: u64,
    /// Frames delayed by the link-chaos layer.
    pub frames_delayed: u64,
    /// Frames reordered (pushed behind the rest of the queue) by the
    /// link-chaos layer.
    pub frames_reordered: u64,
}

/// One in-flight frame.
#[derive(Debug)]
struct Frame {
    from: NodeId,
    to: NodeId,
    buf: BytesMut,
    /// Frames already perturbed once (delayed or reordered) are exempt
    /// from further chaos, guaranteeing delivery progress.
    exempt: bool,
}

/// A frame parked by [`LinkFate::Delay`] until a future step.
#[derive(Debug)]
struct DelayedFrame {
    release_step: u64,
    frame: Frame,
}

/// A deterministic in-memory message router with a coarse failure clock:
/// [`InMemoryNetwork::tick`] advances time, lets every attached peer
/// heartbeat its parent link, and reports the peers whose parents have
/// fallen silent past the timeout — the §4.2 failure-detection trigger
/// for the rejoin process.
///
/// # Examples
///
/// ```
/// use rom_overlay::{Location, NodeId};
/// use rom_wire::{InMemoryNetwork, Message};
///
/// let mut net = InMemoryNetwork::new();
/// net.add_source(NodeId(0), Location(0), 2);
/// net.add_peer(NodeId(1), Location(1), 2);
/// net.send(NodeId(1), NodeId(0), Message::Join {
///     joiner: NodeId(1),
///     location: Location(1),
///     claimed_bandwidth: 2.0,
/// });
/// net.run_to_quiescence();
/// assert!(net.peer(NodeId(1)).unwrap().is_attached());
/// ```
#[derive(Debug, Default)]
pub struct InMemoryNetwork {
    peers: HashMap<NodeId, Peer>,
    /// In-flight frames, delivered FIFO (unless perturbed by chaos).
    in_flight: VecDeque<Frame>,
    /// Frames parked by the chaos layer, released by step number.
    delayed: Vec<DelayedFrame>,
    /// Optional deterministic link perturbation (`rom-chaos`).
    chaos: Option<LinkChaos>,
    stats: NetworkStats,
    /// Coarse time for heartbeat/failure detection.
    now_tick: u64,
    /// Delivery steps taken (the delay clock of the chaos layer).
    now_step: u64,
}

impl InMemoryNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        InMemoryNetwork::default()
    }

    /// Adds the multicast source (attached at depth 0).
    pub fn add_source(&mut self, id: NodeId, location: Location, capacity: usize) {
        let mut peer = Peer::new(id, location, capacity);
        peer.attached = true;
        self.peers.insert(id, peer);
    }

    /// Adds an ordinary (initially detached) peer.
    pub fn add_peer(&mut self, id: NodeId, location: Location, capacity: usize) {
        self.peers.insert(id, Peer::new(id, location, capacity));
    }

    /// Removes a peer abruptly; in-flight frames to it will be dropped.
    pub fn crash_peer(&mut self, id: NodeId) {
        self.peers.remove(&id);
    }

    /// Read access to one peer.
    #[must_use]
    pub fn peer(&self, id: NodeId) -> Option<&Peer> {
        self.peers.get(&id)
    }

    /// Delivery statistics so far.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Installs a deterministic link-chaos layer: each subsequently
    /// delivered frame may be dropped, delayed (a few steps) or reordered
    /// (sent to the back of the queue) per `cfg`, driven by a dedicated
    /// RNG derived from `seed`. Identical (traffic, cfg, seed) replays
    /// produce identical perturbations.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`LinkChaosConfig`]).
    pub fn enable_chaos(&mut self, cfg: LinkChaosConfig, seed: u64) {
        self.chaos = Some(LinkChaos::new(cfg, seed));
    }

    /// Like [`enable_chaos`](Self::enable_chaos), but losses follow a
    /// Gilbert–Elliott chain with stationary rate `cfg.drop_prob` and the
    /// given burst factor: drops cluster into bursts while the average
    /// rate (and the RNG fork and draw sequence) stay those of the
    /// uniform oracle. At `burst_factor = 1` the fates are bit-identical
    /// to [`enable_chaos`](Self::enable_chaos) — the degenerate
    /// equivalence pinned by `tests/pathology_properties.rs`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see
    /// [`LinkChaos::with_burst`]).
    pub fn enable_bursty_chaos(&mut self, cfg: LinkChaosConfig, burst_factor: f64, seed: u64) {
        self.chaos = Some(LinkChaos::with_burst(cfg, burst_factor, seed));
    }

    /// Installs a pre-built chaos oracle — for composed configurations
    /// such as bursty loss plus a bufferbloat spike schedule
    /// ([`LinkChaos::with_spikes`]).
    pub fn install_chaos(&mut self, oracle: LinkChaos) {
        self.chaos = Some(oracle);
    }

    /// Queues `msg` from `from` to `to`, passing it through the codec.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        self.in_flight.push_back(Frame {
            from,
            to,
            buf,
            exempt: false,
        });
    }

    /// Delivers one frame; returns false when nothing is in flight (or
    /// parked in the chaos delay buffer).
    ///
    /// # Panics
    ///
    /// Panics if an in-flight frame fails to decode — the harness encoded
    /// it itself, so that is a codec bug worth crashing a test over.
    pub fn step(&mut self) -> bool {
        self.now_step += 1;
        // Release due delayed frames ahead of the queue (they were sent
        // before anything still in flight), preserving their park order.
        let mut due = Vec::new();
        let mut index = 0;
        while index < self.delayed.len() {
            if self.delayed[index].release_step <= self.now_step {
                due.push(self.delayed.remove(index));
            } else {
                index += 1;
            }
        }
        for parked in due.into_iter().rev() {
            self.in_flight.push_front(parked.frame);
        }
        let Some(frame) = self.in_flight.pop_front() else {
            // Nothing deliverable yet; report activity while parked
            // frames wait for their release step.
            return !self.delayed.is_empty();
        };
        if !frame.exempt {
            if let Some(chaos) = self.chaos.as_mut() {
                // Time-aware classification on the delivery-step clock
                // (sim time, never wall clock): draw-for-draw identical
                // to `classify()` unless a spike schedule is installed.
                match chaos.classify_at(self.now_step) {
                    LinkFate::Drop => {
                        self.stats.frames_dropped += 1;
                        return true;
                    }
                    LinkFate::Delay(steps) => {
                        self.stats.frames_delayed += 1;
                        self.delayed.push(DelayedFrame {
                            release_step: self.now_step + steps,
                            frame: Frame {
                                exempt: true,
                                ..frame
                            },
                        });
                        return true;
                    }
                    LinkFate::Reorder if !self.in_flight.is_empty() => {
                        self.stats.frames_reordered += 1;
                        self.in_flight.push_back(Frame {
                            exempt: true,
                            ..frame
                        });
                        return true;
                    }
                    // Reordering an only frame is a no-op: deliver it.
                    LinkFate::Reorder | LinkFate::Deliver => {}
                }
            }
        }
        let Frame { from, to, buf, .. } = frame;
        self.stats.bytes_moved += buf.len() as u64;
        let mut encoded = buf.freeze();
        // rom-lint: allow(panic-sites) -- the harness encoded this frame itself; a decode failure is a codec bug worth crashing a test over (documented above)
        let msg = decode(&mut encoded).expect("harness frames always decode");
        let Some(peer) = self.peers.get_mut(&to) else {
            self.stats.frames_to_dead_peers += 1;
            return true;
        };
        self.stats.frames_delivered += 1;
        let tick = self.now_tick;
        for (dest, reply) in peer.handle(from, msg, tick) {
            let mut buf = BytesMut::new();
            encode(&reply, &mut buf);
            self.in_flight.push_back(Frame {
                from: to,
                to: dest,
                buf,
                exempt: false,
            });
        }
        true
    }

    /// Advances the failure clock one tick: every attached peer
    /// heartbeats its parent, the resulting frames are delivered, and the
    /// peers whose parents have been silent for more than
    /// `timeout_ticks` are returned — they would now launch the §4.2
    /// rejoin process.
    pub fn tick(&mut self, timeout_ticks: u64) -> Vec<NodeId> {
        self.now_tick += 1;
        // Parents heartbeat their children? In the paper the member
        // detects its *parent's* failure, so parents send heartbeats
        // downstream.
        let edges: Vec<(NodeId, NodeId)> = self
            .peers
            .values()
            .flat_map(|p| p.children.iter().map(move |&c| (p.id, c)))
            .collect();
        for (parent, child) in edges {
            self.send(parent, child, Message::Heartbeat { from: parent });
        }
        self.run_to_quiescence();
        let now = self.now_tick;
        let mut suspected: Vec<NodeId> = self
            .peers
            .values()
            .filter(|p| {
                p.attached
                    && p.parent.is_some()
                    && now.saturating_sub(p.parent_last_heard) > timeout_ticks
            })
            .map(|p| p.id)
            .collect();
        suspected.sort();
        suspected
    }

    /// Delivers frames until the network is quiet.
    ///
    /// # Panics
    ///
    /// Panics after a million steps — a protocol loop, not a slow test.
    pub fn run_to_quiescence(&mut self) {
        for _ in 0..1_000_000u32 {
            if !self.step() {
                return;
            }
        }
        // rom-lint: allow(panic-sites) -- documented harness backstop: a million undelivered frames means a protocol loop, not a recoverable state
        panic!("message loop did not quiesce");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a source plus `n` peers joined in a chain/tree via real
    /// JOIN handshakes.
    fn joined_network(n: u64, capacity: usize) -> InMemoryNetwork {
        let mut net = InMemoryNetwork::new();
        net.add_source(NodeId(0), Location(0), capacity);
        for id in 1..=n {
            net.add_peer(NodeId(id), Location(id as u32), capacity);
            // Try targets in id order until one accepts (bootstrap
            // discovery is the driver's job).
            let mut target = 0u64;
            loop {
                net.send(
                    NodeId(id),
                    NodeId(target),
                    Message::Join {
                        joiner: NodeId(id),
                        location: Location(id as u32),
                        claimed_bandwidth: capacity as f64,
                    },
                );
                net.run_to_quiescence();
                if net.peer(NodeId(id)).unwrap().is_attached() {
                    break;
                }
                target += 1;
                assert!(target < id, "nobody accepted {id}");
            }
        }
        net
    }

    #[test]
    fn join_handshake_builds_a_tree() {
        let net = joined_network(7, 2);
        // Everyone attached, depths consistent with parents.
        for id in 1..=7u64 {
            let p = net.peer(NodeId(id)).unwrap();
            assert!(p.is_attached());
            let parent = net.peer(p.parent().unwrap()).unwrap();
            assert_eq!(p.depth(), parent.depth() + 1);
            assert!(parent.children().contains(&NodeId(id)));
        }
        // Capacity respected.
        for id in 0..=7u64 {
            assert!(net.peer(NodeId(id)).unwrap().children().len() <= 2);
        }
    }

    #[test]
    fn join_rejected_when_full_or_detached() {
        let mut net = InMemoryNetwork::new();
        net.add_source(NodeId(0), Location(0), 1);
        net.add_peer(NodeId(1), Location(1), 1);
        net.add_peer(NodeId(2), Location(2), 1);
        net.add_peer(NodeId(3), Location(3), 1);
        for id in [1u64, 2] {
            net.send(
                NodeId(id),
                NodeId(0),
                Message::Join {
                    joiner: NodeId(id),
                    location: Location(id as u32),
                    claimed_bandwidth: 1.0,
                },
            );
        }
        net.run_to_quiescence();
        // Source capacity 1: only peer 1 got in.
        assert!(net.peer(NodeId(1)).unwrap().is_attached());
        assert!(!net.peer(NodeId(2)).unwrap().is_attached());
        // Joining via a detached peer is refused too.
        net.send(
            NodeId(3),
            NodeId(2),
            Message::Join {
                joiner: NodeId(3),
                location: Location(3),
                claimed_bandwidth: 1.0,
            },
        );
        net.run_to_quiescence();
        assert!(!net.peer(NodeId(3)).unwrap().is_attached());
    }

    #[test]
    fn data_flows_to_every_member() {
        let mut net = joined_network(7, 2);
        for seq in 0..10u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![0xAB],
                },
            );
        }
        net.run_to_quiescence();
        for id in 1..=7u64 {
            for seq in 0..10u64 {
                assert!(
                    net.peer(NodeId(id)).unwrap().has_packet(seq),
                    "peer {id} missing {seq}"
                );
            }
        }
    }

    #[test]
    fn gaps_trigger_eln_downstream() {
        let mut net = joined_network(7, 2);
        // Stream 0..5, then skip to 9: everyone below the source should
        // learn 5..9 are missing upstream — except the members that got
        // the data straight from the source injection.
        for seq in 0..5u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.send(
            NodeId(0),
            NodeId(0),
            Message::Data {
                seq: 9,
                payload: vec![],
            },
        );
        net.run_to_quiescence();
        // The source's own children saw the gap and notified THEIR
        // children; deep members hold ELN records.
        let deep: Vec<u64> = (1..=7)
            .filter(|&id| net.peer(NodeId(id)).unwrap().depth() >= 2)
            .collect();
        assert!(!deep.is_empty(), "test tree should have depth ≥ 2");
        for id in deep {
            let missing = net.peer(NodeId(id)).unwrap().eln_missing();
            assert_eq!(missing, vec![5, 6, 7, 8], "peer {id}");
        }
    }

    #[test]
    fn repair_chain_serves_and_forwards() {
        let mut net = joined_network(5, 2);
        // Stream some packets so peers have buffers.
        for seq in 0..20u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.run_to_quiescence();
        // Peer 5 "loses" packets 10..15 and asks peer 1 first; peer 1 has
        // them (it is in the tree), so it serves directly.
        let requester = NodeId(5);
        net.send(
            requester,
            NodeId(1),
            Message::RepairRequest {
                requester,
                seq_lo: 10,
                seq_hi: 15,
                chain: vec![NodeId(2)],
            },
        );
        net.run_to_quiescence();
        for seq in 10..15u64 {
            assert!(net.peer(requester).unwrap().has_packet(seq));
        }
    }

    #[test]
    fn repair_chain_nacks_to_next_member() {
        let mut net = InMemoryNetwork::new();
        net.add_source(NodeId(0), Location(0), 4);
        // Two standalone helpers with hand-filled buffers.
        net.add_peer(NodeId(1), Location(1), 1);
        net.add_peer(NodeId(2), Location(2), 1);
        net.add_peer(NodeId(9), Location(9), 1);
        // Helper 2 holds the packets; helper 1 holds nothing.
        for seq in 50..55u64 {
            net.send(
                NodeId(0),
                NodeId(2),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.run_to_quiescence();
        net.send(
            NodeId(9),
            NodeId(1),
            Message::RepairRequest {
                requester: NodeId(9),
                seq_lo: 50,
                seq_hi: 55,
                chain: vec![NodeId(2)],
            },
        );
        net.run_to_quiescence();
        for seq in 50..55u64 {
            assert!(
                net.peer(NodeId(9)).unwrap().has_packet(seq),
                "repair via NACK-forward failed for {seq}"
            );
        }
    }

    #[test]
    fn frames_to_crashed_peers_are_counted() {
        let mut net = joined_network(3, 2);
        net.crash_peer(NodeId(1));
        net.send(NodeId(0), NodeId(1), Message::Heartbeat { from: NodeId(0) });
        net.run_to_quiescence();
        assert_eq!(net.stats().frames_to_dead_peers, 1);
        assert!(net.stats().frames_delivered > 0);
        assert!(net.stats().bytes_moved > 0);
    }

    #[test]
    fn membership_query_returns_neighbours() {
        let mut net = joined_network(4, 2);
        net.send(
            NodeId(4),
            NodeId(0),
            Message::MembershipQuery {
                from: NodeId(4),
                want: 10,
            },
        );
        // The sample lands on peer 4's handler (ignored there), but the
        // frame must route and decode.
        net.run_to_quiescence();
        assert!(net.stats().frames_delivered > 0);
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;

    /// Joins `n` peers under chaos, retrying the same target until the
    /// handshake lands (drops can eat JOINs or ACCEPTs).
    fn chaotic_network(n: u64, cfg: LinkChaosConfig, seed: u64) -> InMemoryNetwork {
        let mut net = InMemoryNetwork::new();
        net.enable_chaos(cfg, seed);
        net.add_source(NodeId(0), Location(0), 3);
        for id in 1..=n {
            net.add_peer(NodeId(id), Location(id as u32), 3);
            let mut target = 0u64;
            let mut attempts = 0u32;
            while !net.peer(NodeId(id)).unwrap().is_attached() {
                net.send(
                    NodeId(id),
                    NodeId(target),
                    Message::Join {
                        joiner: NodeId(id),
                        location: Location(id as u32),
                        claimed_bandwidth: 3.0,
                    },
                );
                net.run_to_quiescence();
                attempts += 1;
                if attempts % 4 == 0 {
                    target = (target + 1) % id;
                }
                assert!(attempts < 200, "peer {id} never attached under chaos");
            }
        }
        net
    }

    #[test]
    fn chaotic_runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = chaotic_network(6, LinkChaosConfig::heavy(), seed);
            for seq in 0..30u64 {
                net.send(
                    NodeId(0),
                    NodeId(0),
                    Message::Data {
                        seq,
                        payload: vec![0xCD],
                    },
                );
            }
            net.run_to_quiescence();
            let buffers: Vec<(u64, Vec<u64>)> = (0..=6u64)
                .map(|id| {
                    let p = net.peer(NodeId(id)).unwrap();
                    (id, (0..30).filter(|&s| p.has_packet(s)).collect())
                })
                .collect();
            (net.stats(), buffers)
        };
        assert_eq!(run(11), run(11));
        let (stats_a, _) = run(11);
        let (stats_b, _) = run(12);
        assert_ne!(
            (
                stats_a.frames_dropped,
                stats_a.frames_delayed,
                stats_a.frames_reordered
            ),
            (
                stats_b.frames_dropped,
                stats_b.frames_delayed,
                stats_b.frames_reordered
            ),
            "different seeds should perturb differently"
        );
    }

    #[test]
    fn chaos_perturbations_are_counted() {
        let mut net = chaotic_network(5, LinkChaosConfig::heavy(), 3);
        for seq in 0..200u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.run_to_quiescence();
        let stats = net.stats();
        assert!(stats.frames_dropped > 0, "heavy chaos should drop frames");
        assert!(stats.frames_delayed > 0, "heavy chaos should delay frames");
        assert!(
            stats.frames_reordered > 0,
            "heavy chaos should reorder frames"
        );
        assert!(stats.frames_delivered > 0);
    }

    #[test]
    fn delay_only_chaos_still_delivers_everything() {
        // All frames delayed exactly once, none lost: every packet must
        // still reach every member (order within the stream may shuffle,
        // which the gap detector tolerates via its running max).
        let cfg = LinkChaosConfig {
            drop_prob: 0.0,
            delay_prob: 1.0,
            max_delay_steps: 5,
            reorder_prob: 0.0,
        };
        let mut net = chaotic_network(4, cfg, 7);
        for seq in 0..25u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.run_to_quiescence();
        for id in 1..=4u64 {
            for seq in 0..25u64 {
                assert!(
                    net.peer(NodeId(id)).unwrap().has_packet(seq),
                    "peer {id} lost packet {seq} to a delay-only link"
                );
            }
        }
        assert_eq!(net.stats().frames_dropped, 0);
        assert!(net.stats().frames_delayed > 0);
    }

    #[test]
    fn repair_still_converges_under_chaos() {
        // Losses plus the chained repair protocol: ELN notices gaps and
        // explicit repair requests recover them even on a lossy link.
        let mut net = chaotic_network(3, LinkChaosConfig::light(), 21);
        for seq in 0..40u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.run_to_quiescence();
        // Drive repairs until every member holds everything the source
        // holds (an injection frame dropped before reaching the source
        // is gone for good; the repair frames themselves ride the same
        // chaotic link). The source must have received most of the
        // stream for the test to mean anything.
        let at_source: Vec<u64> = (0..40)
            .filter(|&s| net.peer(NodeId(0)).unwrap().has_packet(s))
            .collect();
        assert!(at_source.len() >= 30, "source lost too much of the stream");
        for _ in 0..50 {
            let mut complete = true;
            for id in 1..=3u64 {
                let missing: Vec<u64> = at_source
                    .iter()
                    .copied()
                    .filter(|&s| !net.peer(NodeId(id)).unwrap().has_packet(s))
                    .collect();
                for &seq in &missing {
                    complete = false;
                    net.send(
                        NodeId(id),
                        NodeId(0),
                        Message::RepairRequest {
                            requester: NodeId(id),
                            seq_lo: seq,
                            seq_hi: seq + 1,
                            chain: Vec::new(),
                        },
                    );
                }
            }
            net.run_to_quiescence();
            if complete {
                return;
            }
        }
        panic!("repairs never converged under light chaos");
    }

    #[test]
    fn same_step_releases_dequeue_in_park_order() {
        // Two frames classified at consecutive steps can land on the
        // same release step (Delay(2) then Delay(1)). The pinned policy:
        // parked frames re-enter the queue in park (classification)
        // order, so the earlier-classified frame delivers first. Make
        // the tie-break observable by racing two joins for the single
        // slot on a capacity-1 source.
        let cfg = LinkChaosConfig {
            drop_prob: 0.0,
            delay_prob: 1.0,
            max_delay_steps: 2,
            reorder_prob: 0.0,
        };
        let seed = (0..1_000u64)
            .find(|&s| {
                let mut probe = LinkChaos::new(cfg, s);
                probe.classify() == LinkFate::Delay(2) && probe.classify() == LinkFate::Delay(1)
            })
            .expect("some small seed collides the first two delays");
        let mut net = InMemoryNetwork::new();
        net.enable_chaos(cfg, seed);
        net.add_source(NodeId(0), Location(0), 1);
        for id in [1u64, 2] {
            net.add_peer(NodeId(id), Location(id as u32), 1);
            net.send(
                NodeId(id),
                NodeId(0),
                Message::Join {
                    joiner: NodeId(id),
                    location: Location(id as u32),
                    claimed_bandwidth: 1.0,
                },
            );
        }
        net.run_to_quiescence();
        // Join 1 parked at step 1 for 2 steps, join 2 at step 2 for 1:
        // both due at step 3, dequeued in park order — peer 1 wins.
        assert!(net.peer(NodeId(1)).unwrap().is_attached());
        assert!(!net.peer(NodeId(2)).unwrap().is_attached());
        // Every non-exempt frame (2 joins + 2 replies) parked exactly once.
        assert_eq!(net.stats().frames_delayed, 4);
        assert_eq!(net.stats().frames_dropped, 0);
    }

    #[test]
    fn bursty_chaos_at_factor_one_replays_the_uniform_run() {
        // Harness-level degenerate equivalence: burst factor 1 must
        // reproduce the uniform oracle's whole run — same joins, same
        // drops, same buffers — not just the same loss average.
        let run = |bursty: bool| {
            let cfg = LinkChaosConfig::heavy();
            let mut net = InMemoryNetwork::new();
            if bursty {
                net.enable_bursty_chaos(cfg, 1.0, 13);
            } else {
                net.enable_chaos(cfg, 13);
            }
            net.add_source(NodeId(0), Location(0), 3);
            for id in 1..=5u64 {
                net.add_peer(NodeId(id), Location(id as u32), 3);
                let mut target = 0u64;
                let mut attempts = 0u32;
                while !net.peer(NodeId(id)).unwrap().is_attached() {
                    net.send(
                        NodeId(id),
                        NodeId(target),
                        Message::Join {
                            joiner: NodeId(id),
                            location: Location(id as u32),
                            claimed_bandwidth: 3.0,
                        },
                    );
                    net.run_to_quiescence();
                    attempts += 1;
                    if attempts % 4 == 0 {
                        target = (target + 1) % id;
                    }
                    assert!(attempts < 200, "peer {id} never attached");
                }
            }
            for seq in 0..60u64 {
                net.send(
                    NodeId(0),
                    NodeId(0),
                    Message::Data {
                        seq,
                        payload: vec![0xAB],
                    },
                );
            }
            net.run_to_quiescence();
            let buffers: Vec<(u64, Vec<u64>)> = (0..=5u64)
                .map(|id| {
                    let p = net.peer(NodeId(id)).unwrap();
                    (id, (0..60).filter(|&s| p.has_packet(s)).collect())
                })
                .collect();
            (net.stats(), buffers)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn composed_spike_oracle_delays_whole_windows() {
        // `install_chaos` with a spike schedule: every frame crossing an
        // active window is parked (bufferbloat), none dropped, and the
        // stream still completes once the spikes pass.
        let cfg = LinkChaosConfig {
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay_steps: 1,
            reorder_prob: 0.0,
        };
        let mut net = InMemoryNetwork::new();
        net.install_chaos(LinkChaos::new(cfg, 3).with_spikes(8, 3, 5));
        net.add_source(NodeId(0), Location(0), 2);
        net.add_peer(NodeId(1), Location(1), 2);
        net.send(
            NodeId(1),
            NodeId(0),
            Message::Join {
                joiner: NodeId(1),
                location: Location(1),
                claimed_bandwidth: 2.0,
            },
        );
        net.run_to_quiescence();
        assert!(net.peer(NodeId(1)).unwrap().is_attached());
        for seq in 0..32u64 {
            net.send(
                NodeId(0),
                NodeId(0),
                Message::Data {
                    seq,
                    payload: vec![],
                },
            );
        }
        net.run_to_quiescence();
        let stats = net.stats();
        assert_eq!(stats.frames_dropped, 0);
        assert!(stats.frames_delayed > 0, "spike windows must park frames");
        for seq in 0..32u64 {
            assert!(
                net.peer(NodeId(1)).unwrap().has_packet(seq),
                "bufferbloat must delay, never lose, packet {seq}"
            );
        }
    }
}

#[cfg(test)]
mod failure_detection_tests {
    use super::*;

    fn network_of(n: u64) -> InMemoryNetwork {
        let mut net = InMemoryNetwork::new();
        net.add_source(NodeId(0), Location(0), 2);
        for id in 1..=n {
            net.add_peer(NodeId(id), Location(id as u32), 2);
            let mut target = 0u64;
            loop {
                net.send(
                    NodeId(id),
                    NodeId(target),
                    Message::Join {
                        joiner: NodeId(id),
                        location: Location(id as u32),
                        claimed_bandwidth: 2.0,
                    },
                );
                net.run_to_quiescence();
                if net.peer(NodeId(id)).unwrap().is_attached() {
                    break;
                }
                target += 1;
            }
        }
        net
    }

    #[test]
    fn healthy_parents_are_never_suspected() {
        let mut net = network_of(6);
        for _ in 0..10 {
            let suspected = net.tick(2);
            assert!(suspected.is_empty(), "false positives: {suspected:?}");
        }
    }

    #[test]
    fn crashed_parent_is_detected_by_its_children_only() {
        let mut net = network_of(6);
        let victim = NodeId(1);
        let orphans: Vec<NodeId> = net.peer(victim).unwrap().children().to_vec();
        assert!(!orphans.is_empty(), "victim should have children");
        net.crash_peer(victim);
        // Within the timeout nothing fires; past it, exactly the victim's
        // children are suspected.
        assert!(net.tick(3).is_empty());
        assert!(net.tick(3).is_empty());
        assert!(net.tick(3).is_empty());
        let suspected = net.tick(3);
        assert_eq!(suspected, {
            let mut o = orphans.clone();
            o.sort();
            o
        });
    }

    #[test]
    fn detection_latency_matches_timeout() {
        let mut net = network_of(3);
        net.crash_peer(NodeId(1));
        let timeout = 5u64;
        let mut ticks_until_detection = 0;
        loop {
            ticks_until_detection += 1;
            if !net.tick(timeout).is_empty() {
                break;
            }
            assert!(ticks_until_detection < 50, "never detected");
        }
        assert_eq!(ticks_until_detection, timeout as u32 + 1);
    }
}
