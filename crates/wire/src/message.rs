//! The message vocabulary of the ROST/CER protocol suite.
//!
//! Every exchange the paper describes appears here as a typed message:
//!
//! - **membership** (§3.3): bootstrap queries, `JOIN`/`ACCEPT`/`REJECT`,
//!   graceful leaves, and the periodic neighbour gossip that feeds CER's
//!   partial trees;
//! - **switching** (§3.3): BTP queries/reports, the family lock handshake,
//!   the commit, and unlock;
//! - **referees** (§3.4): appointment, age/bandwidth vouching, and
//!   measurement traffic;
//! - **streaming & recovery** (§4.2): data packets, explicit loss
//!   notifications, repair requests/NACKs/data, and heartbeats.
//!
//! The types are transport-agnostic; [`crate::codec`] provides the compact
//! binary encoding.

use rom_overlay::{Location, NodeId};

/// A member's root path as gossiped to neighbours (§4.1): its own id plus
/// its ancestors root-first — the raw material of CER's partial trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipRecord {
    /// The member this record describes.
    pub member: NodeId,
    /// Ancestors ordered root-first.
    pub ancestors: Vec<NodeId>,
}

/// Why a join request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JoinRefusal {
    /// No spare out-degree.
    NoCapacity = 0,
    /// The prospective parent is itself disconnected.
    Detached = 1,
    /// The prospective parent is mid-switch or mid-recovery (locked).
    Busy = 2,
}

/// One lock operation identifier as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireOpId(pub u64);

/// Every message of the protocol suite.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    // ---- membership (§3.3) ----
    /// Ask a known member for other participants (bootstrap discovery).
    MembershipQuery {
        /// The asking member.
        from: NodeId,
        /// Maximum number of members the asker still wants.
        want: u32,
    },
    /// Response to a membership query.
    MembershipSample {
        /// Members the responder knows about.
        members: Vec<NodeId>,
    },
    /// Request to become `parent`'s child.
    Join {
        /// The joining member.
        joiner: NodeId,
        /// Its underlay attachment (for nearest-parent tie-breaks).
        location: Location,
        /// Self-reported outbound bandwidth (verified via referees before
        /// it ever matters, §3.4).
        claimed_bandwidth: f64,
    },
    /// The parent accepts; it reports its own depth so the joiner can
    /// compare offers ("chooses the one with the smallest tree depth").
    JoinAccept {
        /// The accepting parent.
        parent: NodeId,
        /// The parent's layer number.
        parent_depth: u32,
    },
    /// The parent refuses.
    JoinReject {
        /// Why.
        reason: JoinRefusal,
    },
    /// Graceful departure notice to neighbours (members "may give
    /// notification ... or may just leave abruptly").
    Leave {
        /// The departing member.
        member: NodeId,
    },
    /// Periodic neighbour-information exchange (§4.1).
    Gossip {
        /// Root-path records for members the sender knows.
        records: Vec<GossipRecord>,
    },

    // ---- BTP switching (§3.3) ----
    /// Child asks its parent for its current BTP.
    BtpQuery {
        /// The asking child.
        from: NodeId,
    },
    /// The parent's answer (age and bandwidth separately, so the child can
    /// audit them against the referees).
    BtpReport {
        /// The reporting member.
        member: NodeId,
        /// Claimed outbound bandwidth.
        bandwidth: f64,
        /// Claimed age in seconds.
        age_secs: f64,
    },
    /// Ask a family member for its lock.
    LockRequest {
        /// The switching operation.
        op: WireOpId,
        /// The member initiating the switch.
        initiator: NodeId,
    },
    /// Lock granted.
    LockGrant {
        /// The operation being granted.
        op: WireOpId,
    },
    /// Lock denied — the member is busy with another operation; retry
    /// after the §3.3 back-off.
    LockDeny {
        /// The operation being denied.
        op: WireOpId,
    },
    /// The initiator commits the position swap to a locked family member,
    /// telling it its new parent.
    SwitchCommit {
        /// The operation.
        op: WireOpId,
        /// The receiver's new parent.
        new_parent: NodeId,
    },
    /// Locks released; normal operation resumes.
    Unlock {
        /// The operation being released.
        op: WireOpId,
    },

    // ---- referees (§3.4) ----
    /// The parent appoints the receiver as an age referee for `subject`.
    RefereeAppoint {
        /// The member being witnessed.
        subject: NodeId,
        /// The join time to record, in seconds since the session epoch.
        join_time_secs: f64,
    },
    /// Ask a referee for `subject`'s witnessed age.
    AgeQuery {
        /// The member in question.
        subject: NodeId,
    },
    /// A referee vouches for `subject`'s join time.
    AgeVouch {
        /// The member in question.
        subject: NodeId,
        /// The recorded join time (seconds since epoch).
        join_time_secs: f64,
    },
    /// A bandwidth measurer reports its partial reading of `subject`'s
    /// test transmission.
    BandwidthPartial {
        /// The member being measured.
        subject: NodeId,
        /// The partial rate this measurer observed (stream-rate units).
        rate: f64,
    },
    /// A bandwidth referee vouches for `subject`'s aggregated measurement.
    BandwidthVouch {
        /// The member in question.
        subject: NodeId,
        /// The aggregate measured bandwidth.
        rate: f64,
    },

    // ---- streaming & recovery (§4.2) ----
    /// A media packet. The payload itself is opaque to the protocol.
    Data {
        /// Sequence number.
        seq: u64,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// Explicit loss notification: "contains a sequence number (or a
    /// series of sequence numbers when necessary)".
    Eln {
        /// The member that detected the upstream loss.
        origin: NodeId,
        /// The missing sequence numbers.
        missing: Vec<u64>,
    },
    /// Ask the first reachable member of `chain` to repair `[seq_lo,
    /// seq_hi)`; on a miss the receiver NACKs and forwards down the chain.
    RepairRequest {
        /// The requesting member.
        requester: NodeId,
        /// First missing sequence number.
        seq_lo: u64,
        /// One past the last missing sequence number.
        seq_hi: u64,
        /// The rest of the recovery group, in distance order.
        chain: Vec<NodeId>,
    },
    /// A repaired packet sent back to the requester (and intermediaries).
    RepairData {
        /// Sequence number being repaired.
        seq: u64,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// The receiver does not hold the requested packet(s).
    RepairNack {
        /// The member NACKing.
        from: NodeId,
        /// First sequence it was asked for.
        seq_lo: u64,
    },
    /// Keep-alive on referee and parent links.
    Heartbeat {
        /// The sender.
        from: NodeId,
    },
}

impl Message {
    /// The wire tag identifying this variant (stable across versions).
    #[must_use]
    pub fn tag(&self) -> u8 {
        match self {
            Message::MembershipQuery { .. } => 0x01,
            Message::MembershipSample { .. } => 0x02,
            Message::Join { .. } => 0x03,
            Message::JoinAccept { .. } => 0x04,
            Message::JoinReject { .. } => 0x05,
            Message::Leave { .. } => 0x06,
            Message::Gossip { .. } => 0x07,
            Message::BtpQuery { .. } => 0x10,
            Message::BtpReport { .. } => 0x11,
            Message::LockRequest { .. } => 0x12,
            Message::LockGrant { .. } => 0x13,
            Message::LockDeny { .. } => 0x14,
            Message::SwitchCommit { .. } => 0x15,
            Message::Unlock { .. } => 0x16,
            Message::RefereeAppoint { .. } => 0x20,
            Message::AgeQuery { .. } => 0x21,
            Message::AgeVouch { .. } => 0x22,
            Message::BandwidthPartial { .. } => 0x23,
            Message::BandwidthVouch { .. } => 0x24,
            Message::Data { .. } => 0x30,
            Message::Eln { .. } => 0x31,
            Message::RepairRequest { .. } => 0x32,
            Message::RepairData { .. } => 0x33,
            Message::RepairNack { .. } => 0x34,
            Message::Heartbeat { .. } => 0x35,
        }
    }

    /// True for messages on the (latency-sensitive) data path — useful
    /// for transport prioritization.
    #[must_use]
    pub fn is_data_path(&self) -> bool {
        matches!(
            self,
            Message::Data { .. }
                | Message::Eln { .. }
                | Message::RepairRequest { .. }
                | Message::RepairData { .. }
                | Message::RepairNack { .. }
        )
    }
}

impl JoinRefusal {
    /// Parses the wire representation.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(JoinRefusal::NoCapacity),
            1 => Some(JoinRefusal::Detached),
            2 => Some(JoinRefusal::Busy),
            _ => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let samples = sample_messages();
        let mut tags: Vec<u8> = samples.iter().map(Message::tag).collect();
        let before = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), before, "duplicate wire tags");
    }

    #[test]
    fn data_path_classification() {
        assert!(Message::Data {
            seq: 1,
            payload: vec![]
        }
        .is_data_path());
        assert!(Message::Eln {
            origin: NodeId(1),
            missing: vec![2]
        }
        .is_data_path());
        assert!(!Message::Heartbeat { from: NodeId(1) }.is_data_path());
        assert!(!Message::Join {
            joiner: NodeId(1),
            location: Location(0),
            claimed_bandwidth: 1.0
        }
        .is_data_path());
    }

    #[test]
    fn refusal_roundtrip() {
        for r in [
            JoinRefusal::NoCapacity,
            JoinRefusal::Detached,
            JoinRefusal::Busy,
        ] {
            assert_eq!(JoinRefusal::from_u8(r as u8), Some(r));
        }
        assert_eq!(JoinRefusal::from_u8(99), None);
    }

    /// One instance of every message variant, reused by the codec tests.
    pub(crate) fn sample_messages() -> Vec<Message> {
        vec![
            Message::MembershipQuery {
                from: NodeId(1),
                want: 100,
            },
            Message::MembershipSample {
                members: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            Message::Join {
                joiner: NodeId(9),
                location: Location(77),
                claimed_bandwidth: 2.5,
            },
            Message::JoinAccept {
                parent: NodeId(4),
                parent_depth: 3,
            },
            Message::JoinReject {
                reason: JoinRefusal::Busy,
            },
            Message::Leave { member: NodeId(5) },
            Message::Gossip {
                records: vec![GossipRecord {
                    member: NodeId(8),
                    ancestors: vec![NodeId(0), NodeId(2)],
                }],
            },
            Message::BtpQuery { from: NodeId(3) },
            Message::BtpReport {
                member: NodeId(3),
                bandwidth: 4.0,
                age_secs: 120.5,
            },
            Message::LockRequest {
                op: WireOpId(42),
                initiator: NodeId(3),
            },
            Message::LockGrant { op: WireOpId(42) },
            Message::LockDeny { op: WireOpId(42) },
            Message::SwitchCommit {
                op: WireOpId(42),
                new_parent: NodeId(3),
            },
            Message::Unlock { op: WireOpId(42) },
            Message::RefereeAppoint {
                subject: NodeId(9),
                join_time_secs: 1234.5,
            },
            Message::AgeQuery { subject: NodeId(9) },
            Message::AgeVouch {
                subject: NodeId(9),
                join_time_secs: 1234.5,
            },
            Message::BandwidthPartial {
                subject: NodeId(9),
                rate: 0.8,
            },
            Message::BandwidthVouch {
                subject: NodeId(9),
                rate: 2.4,
            },
            Message::Data {
                seq: 1_000_000,
                payload: vec![1, 2, 3, 4],
            },
            Message::Eln {
                origin: NodeId(6),
                missing: vec![10, 11, 15],
            },
            Message::RepairRequest {
                requester: NodeId(6),
                seq_lo: 100,
                seq_hi: 250,
                chain: vec![NodeId(7), NodeId(8)],
            },
            Message::RepairData {
                seq: 101,
                payload: vec![9, 9],
            },
            Message::RepairNack {
                from: NodeId(7),
                seq_lo: 100,
            },
            Message::Heartbeat { from: NodeId(2) },
        ]
    }
}
