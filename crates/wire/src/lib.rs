//! # rom-wire: the protocol's wire format
//!
//! Typed messages and a compact, versioned binary codec for every
//! exchange in the ROST/CER protocol suite — membership and join
//! handshakes, BTP switching with its family locks, referee appointment
//! and vouching, the media stream, explicit loss notifications, and the
//! repair chain. This is the layer a deployment would put on the network;
//! the simulators bypass it (their exchanges are in-process), but the
//! message vocabulary is shared so the two stay in lock-step.
//!
//! # Examples
//!
//! ```
//! use bytes::BytesMut;
//! use rom_overlay::NodeId;
//! use rom_wire::{decode, encode, Message};
//!
//! // A member notices packets 100..103 missing upstream and tells its
//! // children via ELN.
//! let eln = Message::Eln {
//!     origin: NodeId(6),
//!     missing: vec![100, 101, 102],
//! };
//! let mut buf = BytesMut::new();
//! encode(&eln, &mut buf);
//! let mut frame = buf.freeze();
//! assert_eq!(decode(&mut frame)?, eln);
//! # Ok::<(), rom_wire::DecodeError>(())
//! ```

mod codec;
mod harness;
mod message;

pub use codec::{decode, encode, DecodeError, MAX_COLLECTION_LEN, WIRE_VERSION};
pub use harness::{InMemoryNetwork, NetworkStats, Peer};
pub use message::{GossipRecord, JoinRefusal, Message, WireOpId};
