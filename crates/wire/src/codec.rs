//! The binary codec: compact, versioned, length-delimited frames.
//!
//! Frame layout:
//!
//! ```text
//! +---------+---------+------------------+
//! | version | tag (1) | variant fields   |
//! |   (1)   |         |                  |
//! +---------+---------+------------------+
//! ```
//!
//! Scalars are little-endian; `f64`s travel as IEEE-754 bit patterns;
//! collections carry a `u32` length prefix. [`encode`] appends one frame
//! to a buffer; [`decode`] consumes one frame and rejects anything
//! malformed — unknown versions or tags, truncated fields, oversized
//! lengths, non-finite floats where the protocol requires finite ones.

use bytes::{Buf, BufMut, BytesMut};
use rom_overlay::{Location, NodeId};

use crate::message::{GossipRecord, JoinRefusal, Message, WireOpId};

/// The codec version emitted by this build.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on any length prefix — keeps a corrupt frame from asking
/// the decoder to allocate gigabytes.
pub const MAX_COLLECTION_LEN: u32 = 1 << 20;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended mid-frame.
    Truncated,
    /// The version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The tag byte maps to no known message.
    UnknownTag(u8),
    /// A length prefix exceeded [`MAX_COLLECTION_LEN`].
    OversizedCollection(u32),
    /// A field carried an invalid value (e.g. NaN where a rate belongs,
    /// or an unknown enum discriminant).
    InvalidField(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame truncated"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            DecodeError::OversizedCollection(n) => {
                write!(f, "collection length {n} exceeds the frame limit")
            }
            DecodeError::InvalidField(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes one message, appending the frame to `buf`.
///
/// # Examples
///
/// ```
/// use bytes::BytesMut;
/// use rom_overlay::NodeId;
/// use rom_wire::{decode, encode, Message};
///
/// let msg = Message::Heartbeat { from: NodeId(7) };
/// let mut buf = BytesMut::new();
/// encode(&msg, &mut buf);
/// let mut frame = buf.freeze();
/// assert_eq!(decode(&mut frame)?, msg);
/// # Ok::<(), rom_wire::DecodeError>(())
/// ```
pub fn encode(msg: &Message, buf: &mut BytesMut) {
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(msg.tag());
    match msg {
        Message::MembershipQuery { from, want } => {
            put_node(buf, *from);
            buf.put_u32_le(*want);
        }
        Message::MembershipSample { members } => put_nodes(buf, members),
        Message::Join {
            joiner,
            location,
            claimed_bandwidth,
        } => {
            put_node(buf, *joiner);
            buf.put_u32_le(location.0);
            buf.put_f64_le(*claimed_bandwidth);
        }
        Message::JoinAccept {
            parent,
            parent_depth,
        } => {
            put_node(buf, *parent);
            buf.put_u32_le(*parent_depth);
        }
        Message::JoinReject { reason } => buf.put_u8(*reason as u8),
        Message::Leave { member } => put_node(buf, *member),
        Message::Gossip { records } => {
            buf.put_u32_le(records.len() as u32);
            for r in records {
                put_node(buf, r.member);
                put_nodes(buf, &r.ancestors);
            }
        }
        Message::BtpQuery { from } => put_node(buf, *from),
        Message::BtpReport {
            member,
            bandwidth,
            age_secs,
        } => {
            put_node(buf, *member);
            buf.put_f64_le(*bandwidth);
            buf.put_f64_le(*age_secs);
        }
        Message::LockRequest { op, initiator } => {
            buf.put_u64_le(op.0);
            put_node(buf, *initiator);
        }
        Message::LockGrant { op } | Message::LockDeny { op } | Message::Unlock { op } => {
            buf.put_u64_le(op.0);
        }
        Message::SwitchCommit { op, new_parent } => {
            buf.put_u64_le(op.0);
            put_node(buf, *new_parent);
        }
        Message::RefereeAppoint {
            subject,
            join_time_secs,
        }
        | Message::AgeVouch {
            subject,
            join_time_secs,
        } => {
            put_node(buf, *subject);
            buf.put_f64_le(*join_time_secs);
        }
        Message::AgeQuery { subject } => put_node(buf, *subject),
        Message::BandwidthPartial { subject, rate } | Message::BandwidthVouch { subject, rate } => {
            put_node(buf, *subject);
            buf.put_f64_le(*rate);
        }
        Message::Data { seq, payload } | Message::RepairData { seq, payload } => {
            buf.put_u64_le(*seq);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }
        Message::Eln { origin, missing } => {
            put_node(buf, *origin);
            buf.put_u32_le(missing.len() as u32);
            for &s in missing {
                buf.put_u64_le(s);
            }
        }
        Message::RepairRequest {
            requester,
            seq_lo,
            seq_hi,
            chain,
        } => {
            put_node(buf, *requester);
            buf.put_u64_le(*seq_lo);
            buf.put_u64_le(*seq_hi);
            put_nodes(buf, chain);
        }
        Message::RepairNack { from, seq_lo } => {
            put_node(buf, *from);
            buf.put_u64_le(*seq_lo);
        }
        Message::Heartbeat { from } => put_node(buf, *from),
    }
}

/// Decodes one message from the front of `buf`, consuming exactly its
/// frame.
///
/// # Errors
///
/// Any [`DecodeError`]; on error the buffer state is unspecified (framing
/// above this codec should discard the connection).
pub fn decode<B: Buf>(buf: &mut B) -> Result<Message, DecodeError> {
    let version = get_u8(buf)?;
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let tag = get_u8(buf)?;
    let msg = match tag {
        0x01 => Message::MembershipQuery {
            from: get_node(buf)?,
            want: get_u32(buf)?,
        },
        0x02 => Message::MembershipSample {
            members: get_nodes(buf)?,
        },
        0x03 => Message::Join {
            joiner: get_node(buf)?,
            location: Location(get_u32(buf)?),
            claimed_bandwidth: get_finite_f64(buf, "claimed bandwidth")?,
        },
        0x04 => Message::JoinAccept {
            parent: get_node(buf)?,
            parent_depth: get_u32(buf)?,
        },
        0x05 => Message::JoinReject {
            reason: JoinRefusal::from_u8(get_u8(buf)?)
                .ok_or(DecodeError::InvalidField("join refusal code"))?,
        },
        0x06 => Message::Leave {
            member: get_node(buf)?,
        },
        0x07 => {
            let n = get_len(buf)?;
            let mut records = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                records.push(GossipRecord {
                    member: get_node(buf)?,
                    ancestors: get_nodes(buf)?,
                });
            }
            Message::Gossip { records }
        }
        0x10 => Message::BtpQuery {
            from: get_node(buf)?,
        },
        0x11 => Message::BtpReport {
            member: get_node(buf)?,
            bandwidth: get_finite_f64(buf, "bandwidth")?,
            age_secs: get_finite_f64(buf, "age")?,
        },
        0x12 => Message::LockRequest {
            op: WireOpId(get_u64(buf)?),
            initiator: get_node(buf)?,
        },
        0x13 => Message::LockGrant {
            op: WireOpId(get_u64(buf)?),
        },
        0x14 => Message::LockDeny {
            op: WireOpId(get_u64(buf)?),
        },
        0x15 => Message::SwitchCommit {
            op: WireOpId(get_u64(buf)?),
            new_parent: get_node(buf)?,
        },
        0x16 => Message::Unlock {
            op: WireOpId(get_u64(buf)?),
        },
        0x20 => Message::RefereeAppoint {
            subject: get_node(buf)?,
            join_time_secs: get_finite_f64(buf, "join time")?,
        },
        0x21 => Message::AgeQuery {
            subject: get_node(buf)?,
        },
        0x22 => Message::AgeVouch {
            subject: get_node(buf)?,
            join_time_secs: get_finite_f64(buf, "join time")?,
        },
        0x23 => Message::BandwidthPartial {
            subject: get_node(buf)?,
            rate: get_finite_f64(buf, "rate")?,
        },
        0x24 => Message::BandwidthVouch {
            subject: get_node(buf)?,
            rate: get_finite_f64(buf, "rate")?,
        },
        0x30 => Message::Data {
            seq: get_u64(buf)?,
            payload: get_bytes(buf)?,
        },
        0x31 => {
            let origin = get_node(buf)?;
            let n = get_len(buf)?;
            let mut missing = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                missing.push(get_u64(buf)?);
            }
            Message::Eln { origin, missing }
        }
        0x32 => Message::RepairRequest {
            requester: get_node(buf)?,
            seq_lo: get_u64(buf)?,
            seq_hi: get_u64(buf)?,
            chain: get_nodes(buf)?,
        },
        0x33 => Message::RepairData {
            seq: get_u64(buf)?,
            payload: get_bytes(buf)?,
        },
        0x34 => Message::RepairNack {
            from: get_node(buf)?,
            seq_lo: get_u64(buf)?,
        },
        0x35 => Message::Heartbeat {
            from: get_node(buf)?,
        },
        other => return Err(DecodeError::UnknownTag(other)),
    };
    Ok(msg)
}

// ---- primitive helpers ----

fn put_node(buf: &mut BytesMut, node: NodeId) {
    buf.put_u64_le(node.0);
}

fn put_nodes(buf: &mut BytesMut, nodes: &[NodeId]) {
    buf.put_u32_le(nodes.len() as u32);
    for &n in nodes {
        buf.put_u64_le(n.0);
    }
}

fn get_u8<B: Buf>(buf: &mut B) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u32<B: Buf>(buf: &mut B) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64<B: Buf>(buf: &mut B) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_finite_f64<B: Buf>(buf: &mut B, what: &'static str) -> Result<f64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let v = buf.get_f64_le();
    if v.is_finite() {
        Ok(v)
    } else {
        Err(DecodeError::InvalidField(what))
    }
}

fn get_len<B: Buf>(buf: &mut B) -> Result<usize, DecodeError> {
    let n = get_u32(buf)?;
    if n > MAX_COLLECTION_LEN {
        return Err(DecodeError::OversizedCollection(n));
    }
    Ok(n as usize)
}

fn get_node<B: Buf>(buf: &mut B) -> Result<NodeId, DecodeError> {
    Ok(NodeId(get_u64(buf)?))
}

fn get_nodes<B: Buf>(buf: &mut B) -> Result<Vec<NodeId>, DecodeError> {
    let n = get_len(buf)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_node(buf)?);
    }
    Ok(out)
}

fn get_bytes<B: Buf>(buf: &mut B) -> Result<Vec<u8>, DecodeError> {
    let n = get_len(buf)?;
    if buf.remaining() < n {
        return Err(DecodeError::Truncated);
    }
    let mut out = vec![0u8; n];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::tests::sample_messages;

    #[test]
    fn every_variant_roundtrips() {
        for msg in sample_messages() {
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            let mut frame = buf.freeze();
            let decoded = decode(&mut frame).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(decoded, msg);
            assert_eq!(frame.remaining(), 0, "{msg:?} left trailing bytes");
        }
    }

    #[test]
    fn frames_concatenate() {
        let msgs = sample_messages();
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode(m, &mut buf);
        }
        let mut stream = buf.freeze();
        for want in &msgs {
            assert_eq!(&decode(&mut stream).unwrap(), want);
        }
        assert_eq!(stream.remaining(), 0);
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        for msg in sample_messages() {
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            let full = buf.freeze();
            for cut in 0..full.len() {
                let mut partial = full.slice(..cut);
                assert!(
                    decode(&mut partial).is_err(),
                    "{msg:?} decoded from a {cut}-byte prefix"
                );
            }
        }
    }

    #[test]
    fn unknown_version_and_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        buf.put_u8(0x35);
        buf.put_u64_le(1);
        let mut frame = buf.freeze();
        assert_eq!(decode(&mut frame), Err(DecodeError::UnsupportedVersion(99)));

        let mut buf = BytesMut::new();
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(0xEE);
        let mut frame = buf.freeze();
        assert_eq!(decode(&mut frame), Err(DecodeError::UnknownTag(0xEE)));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(0x02); // MembershipSample
        buf.put_u32_le(u32::MAX); // absurd length
        let mut frame = buf.freeze();
        assert_eq!(
            decode(&mut frame),
            Err(DecodeError::OversizedCollection(u32::MAX))
        );
    }

    #[test]
    fn non_finite_floats_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(WIRE_VERSION);
        buf.put_u8(0x11); // BtpReport
        buf.put_u64_le(3);
        buf.put_f64_le(f64::NAN);
        buf.put_f64_le(1.0);
        let mut frame = buf.freeze();
        assert_eq!(
            decode(&mut frame),
            Err(DecodeError::InvalidField("bandwidth"))
        );
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::UnknownTag(0xAB).to_string().contains("0xab"));
        assert!(DecodeError::OversizedCollection(9)
            .to_string()
            .contains('9'));
    }
}
