//! Property tests: arbitrary messages roundtrip through the codec, and
//! arbitrary byte garbage never panics the decoder.

use bytes::{Buf, BytesMut};
use proptest::prelude::*;
use rom_overlay::{Location, NodeId};
use rom_wire::{decode, encode, GossipRecord, JoinRefusal, Message, WireOpId};

fn arb_node() -> impl Strategy<Value = NodeId> {
    any::<u64>().prop_map(NodeId)
}

fn arb_nodes() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(arb_node(), 0..20)
}

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e12f64..1e12).prop_map(|v| v)
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (arb_node(), any::<u32>()).prop_map(|(from, want)| Message::MembershipQuery { from, want }),
        arb_nodes().prop_map(|members| Message::MembershipSample { members }),
        (arb_node(), any::<u32>(), finite_f64()).prop_map(|(joiner, loc, bw)| Message::Join {
            joiner,
            location: Location(loc),
            claimed_bandwidth: bw
        }),
        (arb_node(), any::<u32>()).prop_map(|(parent, parent_depth)| Message::JoinAccept {
            parent,
            parent_depth
        }),
        (0u8..3).prop_map(|r| Message::JoinReject {
            reason: JoinRefusal::from_u8(r).unwrap()
        }),
        arb_node().prop_map(|member| Message::Leave { member }),
        prop::collection::vec((arb_node(), arb_nodes()), 0..8).prop_map(|rs| Message::Gossip {
            records: rs
                .into_iter()
                .map(|(member, ancestors)| GossipRecord { member, ancestors })
                .collect()
        }),
        (arb_node(), finite_f64(), finite_f64()).prop_map(|(member, bandwidth, age_secs)| {
            Message::BtpReport {
                member,
                bandwidth,
                age_secs,
            }
        }),
        (any::<u64>(), arb_node()).prop_map(|(op, initiator)| Message::LockRequest {
            op: WireOpId(op),
            initiator
        }),
        any::<u64>().prop_map(|op| Message::Unlock { op: WireOpId(op) }),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(seq, payload)| Message::Data { seq, payload }),
        (arb_node(), prop::collection::vec(any::<u64>(), 0..32))
            .prop_map(|(origin, missing)| Message::Eln { origin, missing }),
        (arb_node(), any::<u64>(), any::<u64>(), arb_nodes()).prop_map(
            |(requester, seq_lo, seq_hi, chain)| Message::RepairRequest {
                requester,
                seq_lo,
                seq_hi,
                chain
            }
        ),
        arb_node().prop_map(|from| Message::Heartbeat { from }),
    ]
}

proptest! {
    /// encode → decode is the identity for arbitrary messages, consuming
    /// exactly one frame.
    #[test]
    fn roundtrip(msg in arb_message()) {
        let mut buf = BytesMut::new();
        encode(&msg, &mut buf);
        let mut frame = buf.freeze();
        let decoded = decode(&mut frame);
        prop_assert_eq!(decoded, Ok(msg));
        prop_assert_eq!(frame.remaining(), 0);
    }

    /// Concatenated frames decode in order.
    #[test]
    fn streams_of_frames(msgs in prop::collection::vec(arb_message(), 1..20)) {
        let mut buf = BytesMut::new();
        for m in &msgs {
            encode(m, &mut buf);
        }
        let mut stream = buf.freeze();
        for want in &msgs {
            prop_assert_eq!(&decode(&mut stream).unwrap(), want);
        }
        prop_assert_eq!(stream.remaining(), 0);
    }

    /// The decoder never panics on arbitrary garbage — it returns an
    /// error or (rarely) a valid message, but must not crash or hang.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = bytes.as_slice();
        let _ = decode(&mut buf);
    }
}
