//! Member profiles: the static and temporal properties of one participant.

use rom_sim::SimTime;

use crate::id::{Location, NodeId};

/// The properties of one multicast member.
///
/// A profile captures everything the tree-construction algorithms consult:
/// the member's *outbound bandwidth* (in units of the stream rate, so a
/// bandwidth of 3.2 can forward three full streams), its *join time* (from
/// which its age — and hence its bandwidth-time product — follows), its
/// scheduled *lifetime*, and its underlay attachment point.
///
/// # Examples
///
/// ```
/// use rom_overlay::{Location, MemberProfile, NodeId};
/// use rom_sim::SimTime;
///
/// let m = MemberProfile::new(NodeId(7), 3.5, SimTime::from_secs(100.0), 600.0, Location(2));
/// assert_eq!(m.out_capacity(1.0), 3);
/// assert_eq!(m.age(SimTime::from_secs(160.0)), 60.0);
/// assert_eq!(m.btp(SimTime::from_secs(160.0)), 3.5 * 60.0);
/// assert!(!m.is_free_rider(1.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemberProfile {
    /// Unique member id.
    pub id: NodeId,
    /// Outbound (access-link) bandwidth in stream-rate units.
    pub bandwidth: f64,
    /// The instant this member joined the overlay.
    pub join_time: SimTime,
    /// Scheduled session length in seconds. The simulation engine uses this
    /// to schedule the departure; protocols never peek at it.
    pub lifetime: f64,
    /// Underlay attachment point.
    pub location: Location,
}

impl MemberProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is negative/NaN or `lifetime` is not positive.
    #[must_use]
    pub fn new(
        id: NodeId,
        bandwidth: f64,
        join_time: SimTime,
        lifetime: f64,
        location: Location,
    ) -> Self {
        assert!(
            bandwidth >= 0.0 && bandwidth.is_finite(),
            "bandwidth must be finite and non-negative"
        );
        assert!(lifetime > 0.0, "lifetime must be positive");
        MemberProfile {
            id,
            bandwidth,
            join_time,
            lifetime,
            location,
        }
    }

    /// Number of full streams this member can forward: ⌊bandwidth / rate⌋.
    ///
    /// # Panics
    ///
    /// Panics if `stream_rate` is not positive.
    #[must_use]
    pub fn out_capacity(&self, stream_rate: f64) -> usize {
        assert!(stream_rate > 0.0, "stream rate must be positive");
        (self.bandwidth / stream_rate).floor() as usize
    }

    /// True if the member cannot forward even one full stream — the paper's
    /// "free-rider" (§1: a large proportion of members are free-riders).
    #[must_use]
    pub fn is_free_rider(&self, stream_rate: f64) -> bool {
        self.out_capacity(stream_rate) == 0
    }

    /// Seconds this member has been in the overlay at `now`; clamped at 0
    /// for instants before the join.
    #[must_use]
    pub fn age(&self, now: SimTime) -> f64 {
        (now - self.join_time).max(0.0)
    }

    /// The bandwidth-time product at `now` — ROST's ordering criterion
    /// (§3.2): outbound bandwidth × age.
    #[must_use]
    pub fn btp(&self, now: SimTime) -> f64 {
        self.bandwidth * self.age(now)
    }

    /// The instant this member's session ends.
    #[must_use]
    pub fn departure_time(&self) -> SimTime {
        self.join_time + self.lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(bw: f64) -> MemberProfile {
        MemberProfile::new(NodeId(1), bw, SimTime::from_secs(10.0), 100.0, Location(0))
    }

    #[test]
    fn capacity_floors() {
        assert_eq!(member(0.0).out_capacity(1.0), 0);
        assert_eq!(member(0.99).out_capacity(1.0), 0);
        assert_eq!(member(1.0).out_capacity(1.0), 1);
        assert_eq!(member(7.9).out_capacity(1.0), 7);
        // Non-unit stream rates scale the capacity.
        assert_eq!(member(7.9).out_capacity(2.0), 3);
    }

    #[test]
    fn free_rider_definition() {
        assert!(member(0.5).is_free_rider(1.0));
        assert!(!member(1.5).is_free_rider(1.0));
    }

    #[test]
    fn age_clamps_before_join() {
        let m = member(1.0);
        assert_eq!(m.age(SimTime::from_secs(5.0)), 0.0);
        assert_eq!(m.age(SimTime::from_secs(10.0)), 0.0);
        assert_eq!(m.age(SimTime::from_secs(25.0)), 15.0);
    }

    #[test]
    fn btp_grows_proportionally_to_bandwidth() {
        // §3.3: "a node's BTP increases at a rate proportional to its
        // bandwidth".
        let slow = member(1.0);
        let fast = member(4.0);
        let t = SimTime::from_secs(110.0);
        assert_eq!(fast.btp(t), 4.0 * slow.btp(t));
        // A zero-age node has zero BTP regardless of bandwidth.
        assert_eq!(fast.btp(SimTime::from_secs(10.0)), 0.0);
    }

    #[test]
    fn departure_time() {
        assert_eq!(member(1.0).departure_time(), SimTime::from_secs(110.0));
    }

    #[test]
    #[should_panic(expected = "lifetime")]
    fn zero_lifetime_rejected() {
        let _ = MemberProfile::new(NodeId(1), 1.0, SimTime::ZERO, 0.0, Location(0));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn negative_bandwidth_rejected() {
        let _ = MemberProfile::new(NodeId(1), -1.0, SimTime::ZERO, 1.0, Location(0));
    }
}
