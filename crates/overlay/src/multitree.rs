//! Multiple-tree delivery — the paper's §1 extension point.
//!
//! "Although there exist multiple-tree based approaches that improve
//! fault-resilience by leveraging some specialized media encodings (e.g.
//! multiple description coding), using a single-tree provides a more
//! general approach and we believe that the techniques developed under
//! this scheme can also be applied to the multiple-tree case."
//!
//! [`MultiTreeSession`] provides that multiple-tree substrate: the stream
//! is split into `k` stripes (descriptions), each delivered over its own
//! degree-constrained [`MulticastTree`]. Following the interior-disjoint
//! design of SplitStream-style systems, every member contributes its
//! forwarding capacity to exactly **one** designated stripe and joins the
//! remaining stripes as a pure leaf — so one member's failure can cut at
//! most one stripe from any other member, degrading quality by `1/k`
//! instead of silencing playback. All the single-tree machinery (the
//! construction algorithms, ROST switching, CER recovery) applies per
//! stripe unchanged.

use crate::error::TreeError;
use crate::id::NodeId;
use crate::member::MemberProfile;
use crate::tree::{MulticastTree, RemovedMember};

/// A `k`-stripe multiple-tree delivery session.
///
/// # Examples
///
/// ```
/// use rom_overlay::{Location, MemberProfile, MultiTreeSession, NodeId, paper_source};
/// use rom_sim::SimTime;
///
/// let mut session = MultiTreeSession::new(paper_source(Location(0)), 4, 1.0);
/// for id in 1..=20u64 {
///     let m = MemberProfile::new(NodeId(id), 4.0, SimTime::ZERO, 1e6, Location(id as u32));
///     session.join_min_depth(m)?;
/// }
/// // Everyone receives every stripe.
/// assert_eq!(session.stripes_received(NodeId(7)), 4);
///
/// // A failure cuts at most one stripe from any survivor.
/// let outcome = session.remove(NodeId(1))?;
/// assert!(outcome.iter().filter(|s| !s.affected_descendants.is_empty()).count() <= 1);
/// # Ok::<(), rom_overlay::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiTreeSession {
    trees: Vec<MulticastTree>,
    stream_rate: f64,
}

impl MultiTreeSession {
    /// Creates a session with `stripes` trees rooted at `source`. The
    /// source (which serves every stripe) has its capacity split evenly
    /// across the trees; `stream_rate` is the *full* stream rate, so each
    /// stripe carries `stream_rate / stripes`.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero or `stream_rate` is not positive.
    #[must_use]
    pub fn new(source: MemberProfile, stripes: usize, stream_rate: f64) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        assert!(stream_rate > 0.0, "stream rate must be positive");
        let per_stripe_rate = stream_rate / stripes as f64;
        let trees = (0..stripes)
            .map(|_| {
                let mut src = source.clone();
                // Split the source's bandwidth across stripes so its total
                // forwarding load is unchanged.
                src.bandwidth = source.bandwidth / stripes as f64;
                MulticastTree::new(src, per_stripe_rate)
            })
            .collect();
        MultiTreeSession { trees, stream_rate }
    }

    /// Number of stripes.
    #[must_use]
    pub fn stripes(&self) -> usize {
        self.trees.len()
    }

    /// The full stream rate across all stripes.
    #[must_use]
    pub fn stream_rate(&self) -> f64 {
        self.stream_rate
    }

    /// The stripe a member forwards in (interior-disjointness): members
    /// are assigned round-robin by id.
    #[must_use]
    pub fn designated_stripe(&self, member: NodeId) -> usize {
        (member.0 % self.trees.len() as u64) as usize
    }

    /// Read-only access to one stripe's tree.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is out of range.
    #[must_use]
    pub fn tree(&self, stripe: usize) -> &MulticastTree {
        &self.trees[stripe]
    }

    /// Mutable access to one stripe's tree, for running per-stripe
    /// maintenance (e.g. ROST switching) on it.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is out of range.
    pub fn tree_mut(&mut self, stripe: usize) -> &mut MulticastTree {
        &mut self.trees[stripe]
    }

    /// Joins `member` to every stripe by the minimum-depth rule: full
    /// forwarding capacity in its designated stripe, leaf (zero capacity)
    /// elsewhere.
    ///
    /// # Errors
    ///
    /// [`TreeError::ParentFull`] when some stripe has no spare capacity
    /// anywhere (the join is rolled back from every stripe it had already
    /// entered), [`TreeError::DuplicateMember`] if already present.
    pub fn join_min_depth(&mut self, member: MemberProfile) -> Result<(), TreeError> {
        let designated = self.designated_stripe(member.id);
        let mut joined = Vec::new();
        for (stripe, tree) in self.trees.iter_mut().enumerate() {
            let mut profile = member.clone();
            if stripe != designated {
                profile.bandwidth = 0.0; // pure leaf in foreign stripes
            }
            let parent = tree
                .attached_by_depth()
                .find(|&p| tree.has_free_slot(p))
                .ok_or(TreeError::ParentFull(tree.root()));
            let result = parent.and_then(|p| tree.attach(profile, p));
            match result {
                Ok(()) => joined.push(stripe),
                Err(e) => {
                    for &s in &joined {
                        let _ = self.trees[s].remove(member.id);
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Removes `member` from every stripe (abrupt departure), returning
    /// the per-stripe removal records. Stripes where the member was a
    /// leaf report no affected descendants — the interior-disjointness
    /// payoff.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownMember`] if absent from the session,
    /// [`TreeError::RootImmovable`] for the source.
    pub fn remove(&mut self, member: NodeId) -> Result<Vec<RemovedMember>, TreeError> {
        if !self.trees[0].contains(member) {
            return Err(TreeError::UnknownMember(member));
        }
        let mut outcomes = Vec::with_capacity(self.trees.len());
        for tree in &mut self.trees {
            outcomes.push(tree.remove(member)?);
        }
        Ok(outcomes)
    }

    /// Number of stripes `member` currently receives (is attached in).
    #[must_use]
    pub fn stripes_received(&self, member: NodeId) -> usize {
        self.trees.iter().filter(|t| t.is_attached(member)).count()
    }

    /// The fraction of the stream `member` currently receives — with
    /// multiple description coding this is the playback quality after
    /// failures, instead of the single tree's all-or-nothing.
    #[must_use]
    pub fn received_fraction(&self, member: NodeId) -> f64 {
        self.stripes_received(member) as f64 / self.trees.len() as f64
    }

    /// For a hypothetical failure of `member`: how many (victim, stripe)
    /// pairs lose data, summed over stripes. Interior-disjointness keeps
    /// this equal to the member's descendant count in its designated
    /// stripe alone.
    #[must_use]
    pub fn failure_exposure(&self, member: NodeId) -> usize {
        self.trees
            .iter()
            .map(|t| t.subtree_size(member).saturating_sub(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Location;
    use crate::tree::paper_source;
    use rom_sim::SimTime;

    fn member(id: u64, bw: f64) -> MemberProfile {
        MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
    }

    fn session_with(n: u64, stripes: usize) -> MultiTreeSession {
        let mut s = MultiTreeSession::new(paper_source(Location(0)), stripes, 1.0);
        for id in 1..=n {
            s.join_min_depth(member(id, 4.0)).unwrap();
        }
        s
    }

    #[test]
    fn members_receive_every_stripe() {
        let s = session_with(30, 4);
        for id in 1..=30u64 {
            assert_eq!(s.stripes_received(NodeId(id)), 4);
            assert_eq!(s.received_fraction(NodeId(id)), 1.0);
        }
        for stripe in 0..4 {
            s.tree(stripe).check_invariants().unwrap();
            assert_eq!(s.tree(stripe).attached_count(), 31);
        }
    }

    #[test]
    fn interior_disjointness_holds() {
        let s = session_with(40, 4);
        for id in 1..=40u64 {
            let designated = s.designated_stripe(NodeId(id));
            for stripe in 0..4 {
                let kids = s.tree(stripe).child_count(NodeId(id));
                if stripe == designated {
                    // May or may not have children, but only here CAN it.
                    continue;
                }
                assert_eq!(kids, 0, "member {id} forwards in foreign stripe {stripe}");
            }
        }
    }

    #[test]
    fn failures_degrade_instead_of_silencing() {
        let mut s = session_with(40, 4);
        let outcomes = s.remove(NodeId(1)).unwrap();
        // Only the designated stripe can have had descendants.
        let affected_stripes = outcomes
            .iter()
            .filter(|o| !o.affected_descendants.is_empty())
            .count();
        assert!(affected_stripes <= 1);
        // Every survivor still receives at least k-1 stripes.
        for id in 2..=40u64 {
            assert!(s.stripes_received(NodeId(id)) >= 3, "member {id}");
            assert!(s.received_fraction(NodeId(id)) >= 0.75);
        }
    }

    #[test]
    fn exposure_is_confined_to_designated_stripe() {
        let s = session_with(40, 4);
        for id in 1..=40u64 {
            let designated = s.designated_stripe(NodeId(id));
            let exposure = s.failure_exposure(NodeId(id));
            let designated_desc = s.tree(designated).descendants(NodeId(id)).len();
            assert_eq!(exposure, designated_desc);
        }
    }

    #[test]
    fn multi_tree_caps_outage_severity_at_one_stripe() {
        // The multiple-description payoff: in a single tree, any victim of
        // a failure loses the *whole* stream until it rejoins; in a
        // k-stripe session, any single failure costs any victim at most
        // 1/k of the stream. Verified over every possible failure.
        let mut session = session_with(60, 4);
        session.tree(0).check_invariants().unwrap();
        for failed in 1..=60u64 {
            let mut trial = session.clone();
            let outcomes = trial.remove(NodeId(failed)).unwrap();
            // Union of victims across stripes.
            let mut victims: Vec<NodeId> = outcomes
                .iter()
                .flat_map(|o| o.affected_descendants.iter().copied())
                .collect();
            victims.sort();
            victims.dedup();
            for v in victims {
                assert!(
                    trial.received_fraction(v) >= 0.75,
                    "victim {v} of {failed} lost more than one stripe"
                );
            }
        }
        // Keep the original session intact for reuse.
        session.remove(NodeId(1)).unwrap();
    }

    #[test]
    fn join_rolls_back_on_full_session() {
        // Tiny capacities: source capacity 1 per stripe (bw 2 / 2 stripes
        // = 1 per tree at rate 0.5), members free-riders everywhere.
        let source = member(0, 2.0);
        let mut s = MultiTreeSession::new(source, 2, 1.0);
        s.join_min_depth(member(1, 0.0)).unwrap();
        s.join_min_depth(member(2, 0.0)).unwrap();
        let err = s.join_min_depth(member(3, 0.0)).unwrap_err();
        assert!(matches!(err, TreeError::ParentFull(_)));
        // Rolled back everywhere.
        assert_eq!(s.stripes_received(NodeId(3)), 0);
        assert!(!s.tree(0).contains(NodeId(3)));
        assert!(!s.tree(1).contains(NodeId(3)));
    }

    #[test]
    fn removal_guards() {
        let mut s = session_with(5, 2);
        assert_eq!(
            s.remove(NodeId(99)),
            Err(TreeError::UnknownMember(NodeId(99)))
        );
        assert_eq!(s.remove(NodeId(0)), Err(TreeError::RootImmovable));
    }

    #[test]
    fn accessors() {
        let s = session_with(5, 3);
        assert_eq!(s.stripes(), 3);
        assert_eq!(s.stream_rate(), 1.0);
        assert_eq!(s.designated_stripe(NodeId(4)), 1);
    }
}

#[cfg(test)]
mod rost_per_stripe_tests {
    use super::*;
    use crate::id::Location;
    use crate::member::MemberProfile;
    use rom_sim::SimTime;

    /// The §1 claim that "the techniques developed under this scheme can
    /// also be applied to the multiple-tree case": ROST's switching
    /// primitive runs unchanged on each stripe tree via `tree_mut`.
    #[test]
    fn rost_switch_applies_per_stripe() {
        let source = MemberProfile::new(NodeId(0), 8.0, SimTime::ZERO, 1e12, Location(0));
        let mut session = MultiTreeSession::new(source, 2, 1.0);
        // Stripe 0 designated members: even ids. Build an inversion in
        // stripe 0: old weak parent (id 2), strong young child (id 4).
        let old_weak = MemberProfile::new(NodeId(2), 1.0, SimTime::ZERO, 1e9, Location(2));
        let strong_young =
            MemberProfile::new(NodeId(4), 6.0, SimTime::from_secs(100.0), 1e9, Location(4));
        session.join_min_depth(old_weak).unwrap();
        session.join_min_depth(strong_young).unwrap();

        // Force the inversion shape in stripe 0: 0 → 2 → 4.
        let tree0 = session.tree_mut(0);
        if tree0.parent(NodeId(4)) != Some(NodeId(2)) {
            // Re-home 4 under 2 if min-depth placed it directly under the
            // source (capacity permitting).
            let removed = tree0.remove(NodeId(4)).unwrap();
            assert!(removed.orphaned_children.is_empty());
            let strong_young =
                MemberProfile::new(NodeId(4), 6.0, SimTime::from_secs(100.0), 1e9, Location(4));
            tree0.attach(strong_young, NodeId(2)).unwrap();
        }

        // Much later, 4's BTP (6·t) dwarfs 2's (1·t): swap in stripe 0.
        let now = SimTime::from_secs(10_000.0);
        let record = session
            .tree_mut(0)
            .swap_with_parent(NodeId(4), |p| p.btp(now))
            .unwrap();
        assert_eq!(record.promoted, NodeId(4));
        session.tree(0).check_invariants().unwrap();
        // Stripe 1 is untouched: member 4 is a leaf there.
        session.tree(1).check_invariants().unwrap();
        assert_eq!(session.tree(1).child_count(NodeId(4)), 0);
        // Both members still receive both stripes.
        assert_eq!(session.stripes_received(NodeId(4)), 2);
        assert_eq!(session.stripes_received(NodeId(2)), 2);
    }
}
