//! Network-distance queries used for overlay tie-breaking.
//!
//! Tree construction occasionally needs to know how far apart two members
//! are in the underlay (the minimum-depth algorithm breaks layer ties by
//! picking the nearest parent; CER orders recovery nodes by network
//! distance). The overlay crate stays topology-agnostic by consulting this
//! trait; the experiment engine implements it with `rom-net`'s delay
//! oracle.

use crate::id::Location;

/// A source of pairwise underlay delays.
pub trait Proximity {
    /// The unicast delay between two attachment points, in milliseconds.
    fn delay_ms(&self, a: Location, b: Location) -> f64;
}

/// A proximity that reports zero for every pair.
///
/// Useful in unit tests and in experiments where network distance should
/// not influence decisions (all ties then resolve to the first candidate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroProximity;

impl Proximity for ZeroProximity {
    fn delay_ms(&self, _a: Location, _b: Location) -> f64 {
        0.0
    }
}

/// A proximity defined by the absolute difference of location indices.
///
/// A deterministic stand-in for tests that need *distinguishable*
/// distances without a full topology.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexProximity;

impl Proximity for IndexProximity {
    fn delay_ms(&self, a: Location, b: Location) -> f64 {
        (f64::from(a.0) - f64::from(b.0)).abs()
    }
}

impl<P: Proximity + ?Sized> Proximity for &P {
    fn delay_ms(&self, a: Location, b: Location) -> f64 {
        (**self).delay_ms(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_proximity_is_flat() {
        assert_eq!(ZeroProximity.delay_ms(Location(1), Location(9)), 0.0);
    }

    #[test]
    fn index_proximity_is_symmetric_metric() {
        let p = IndexProximity;
        assert_eq!(p.delay_ms(Location(3), Location(7)), 4.0);
        assert_eq!(p.delay_ms(Location(7), Location(3)), 4.0);
        assert_eq!(p.delay_ms(Location(5), Location(5)), 0.0);
    }

    #[test]
    #[allow(clippy::needless_borrows_for_generic_args)] // the borrow IS the point
    fn references_implement_proximity() {
        fn takes_prox<P: Proximity>(p: P) -> f64 {
            p.delay_ms(Location(0), Location(2))
        }
        assert_eq!(takes_prox(&IndexProximity), 2.0);
    }
}
