//! The relaxed bandwidth-ordered and time-ordered centralized baselines.
//!
//! Strict BO/TO trees (§3.1) keep every layer ordered, which costs
//! recursive rejoins on every churn event. The paper therefore evaluates
//! *relaxed* variants (§5 algorithms 3–4): "when a member joins/rejoins the
//! tree, it always searches from the high to low layers to see if there is
//! a smaller-bandwidth or younger node, and if so, the located node is
//! replaced with the new one. The evicted node, and possibly together with
//! some of its children in the case of time ordering, are forced to rejoin
//! the tree. This results in bandwidth/time ordering among parents and
//! children... Note that both algorithms assume a central administrator
//! providing global topological information."

use crate::algorithms::{min_depth_parent_indexed, JoinContext, JoinDecision, TreeAlgorithm};
use crate::id::NodeId;
use crate::member::MemberProfile;
use crate::proximity::Proximity;
use crate::tree::MulticastTree;
use rom_sim::SimTime;

/// The ordering criterion a relaxed ordered tree maintains.
trait OrderKey {
    /// The sort key; *larger* keys deserve *higher* (shallower) positions.
    fn key(profile: &MemberProfile, now: SimTime) -> f64;

    /// The layer's weakest occupant under this ordering — the minimum
    /// (key, id) among attached members at `depth` — answered from the
    /// tree's per-depth eviction index instead of a layer scan.
    fn weakest(tree: &MulticastTree, depth: usize, now: SimTime) -> Option<(f64, NodeId)>;
}

/// Shared eviction search: the shallowest attached non-root member whose
/// key is strictly smaller than the joiner's — the paper's "searches from
/// the high to low layers to see if there is a smaller-bandwidth or
/// younger node". Within the first layer containing a qualifying member,
/// the *weakest* occupant is evicted (ties to the smallest id): evicting
/// the weakest keeps displacement cascades short, since the evictee
/// out-ranks almost nobody and simply reattaches.
///
/// Each layer is answered by one probe of the tree's ordered eviction
/// index: the layer's globally weakest occupant qualifies iff *any*
/// occupant does (every qualifying key is ≥ the minimum), and on key
/// ties the index already yields the smallest id — exactly the member
/// the former full layer scan selected.
fn find_eviction<K: OrderKey>(ctx: &JoinContext<'_>) -> Option<NodeId> {
    let _span = ctx.tree.prof().span("overlay.find_eviction");
    let joiner_key = K::key(ctx.joiner, ctx.now);
    let tree = ctx.tree;
    for depth in 1..=tree.max_depth() {
        if let Some((key, evict)) = K::weakest(tree, depth, ctx.now) {
            if key < joiner_key {
                return Some(evict);
            }
        }
    }
    None
}

fn ordered_select<K: OrderKey>(ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision {
    if let Some(evict) = find_eviction::<K>(ctx) {
        return JoinDecision::Replace { evict };
    }
    // Centralized fallback over the whole attached membership, straight
    // from the tree's free-slot index — no candidate list needed.
    match min_depth_parent_indexed(ctx.tree, ctx.joiner, proximity) {
        Some(parent) => JoinDecision::Attach { parent },
        None => JoinDecision::Reject,
    }
}

struct BandwidthKey;

impl OrderKey for BandwidthKey {
    fn key(profile: &MemberProfile, _now: SimTime) -> f64 {
        profile.bandwidth
    }

    fn weakest(tree: &MulticastTree, depth: usize, _now: SimTime) -> Option<(f64, NodeId)> {
        tree.weakest_by_bandwidth(depth)
    }
}

struct AgeKey;

impl OrderKey for AgeKey {
    fn key(profile: &MemberProfile, now: SimTime) -> f64 {
        profile.age(now)
    }

    fn weakest(tree: &MulticastTree, depth: usize, now: SimTime) -> Option<(f64, NodeId)> {
        tree.weakest_by_age(depth, now)
    }
}

/// The relaxed bandwidth-ordered algorithm (§5 algorithm 3): high-bandwidth
/// members bubble toward the root by evicting weaker occupants, producing a
/// short tree at the cost of eviction-driven reconnections and a central
/// administrator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxedBandwidthOrdered;

impl TreeAlgorithm for RelaxedBandwidthOrdered {
    fn name(&self) -> &'static str {
        "relaxed-bw-ordered"
    }

    fn is_centralized(&self) -> bool {
        true
    }

    fn select(&self, ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision {
        ordered_select::<BandwidthKey>(ctx, proximity)
    }
}

/// The relaxed time-ordered algorithm (§5 algorithm 4): older members
/// bubble toward the root by evicting younger occupants. More stable
/// parents, but a taller tree than bandwidth ordering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxedTimeOrdered;

impl TreeAlgorithm for RelaxedTimeOrdered {
    fn name(&self) -> &'static str {
        "relaxed-time-ordered"
    }

    fn is_centralized(&self) -> bool {
        true
    }

    fn select(&self, ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision {
        ordered_select::<AgeKey>(ctx, proximity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Location;
    use crate::proximity::ZeroProximity;
    use crate::tree::MulticastTree;

    fn profile(id: u64, bw: f64, join_secs: f64) -> MemberProfile {
        MemberProfile::new(
            NodeId(id),
            bw,
            SimTime::from_secs(join_secs),
            1e6,
            Location(id as u32),
        )
    }

    fn ctx<'a>(
        tree: &'a MulticastTree,
        joiner: &'a MemberProfile,
        candidates: &'a [NodeId],
        now_secs: f64,
    ) -> JoinContext<'a> {
        JoinContext {
            tree,
            joiner,
            candidates,
            now: SimTime::from_secs(now_secs),
        }
    }

    #[test]
    fn bo_evicts_shallowest_weaker_node() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 5.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 1.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(3, 0.5, 0.0), NodeId(1)).unwrap();
        let joiner = profile(9, 3.0, 10.0);
        let all: Vec<NodeId> = tree.attached_by_depth().collect();
        let c = ctx(&tree, &joiner, &all, 10.0);
        // Node 2 (bw 1 < 3) sits at depth 1; node 3 is weaker still but
        // deeper — the shallowest weaker node wins.
        assert_eq!(
            RelaxedBandwidthOrdered.select(&c, &ZeroProximity),
            JoinDecision::Replace { evict: NodeId(2) }
        );
    }

    #[test]
    fn bo_picks_weakest_within_layer() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 2.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 1.0, 0.0), NodeId(0)).unwrap();
        let joiner = profile(9, 3.0, 10.0);
        let all: Vec<NodeId> = tree.attached_by_depth().collect();
        let c = ctx(&tree, &joiner, &all, 10.0);
        assert_eq!(
            RelaxedBandwidthOrdered.select(&c, &ZeroProximity),
            JoinDecision::Replace { evict: NodeId(2) }
        );
    }

    #[test]
    fn bo_falls_back_to_min_depth_when_nothing_weaker() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 5.0, 0.0), NodeId(0)).unwrap();
        let joiner = profile(9, 0.7, 10.0); // weaker than everyone
        let all: Vec<NodeId> = tree.attached_by_depth().collect();
        let c = ctx(&tree, &joiner, &all, 10.0);
        assert_eq!(
            RelaxedBandwidthOrdered.select(&c, &ZeroProximity),
            JoinDecision::Attach { parent: NodeId(0) }
        );
    }

    #[test]
    fn to_evicts_younger_node() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 5.0, 10.0), NodeId(0)).unwrap(); // age 90 at t=100
        tree.attach(profile(2, 5.0, 80.0), NodeId(0)).unwrap(); // age 20
        let joiner = profile(9, 1.0, 50.0); // age 50: older than node 2 only
        let all: Vec<NodeId> = tree.attached_by_depth().collect();
        let c = ctx(&tree, &joiner, &all, 100.0);
        assert_eq!(
            RelaxedTimeOrdered.select(&c, &ZeroProximity),
            JoinDecision::Replace { evict: NodeId(2) }
        );
    }

    #[test]
    fn to_attaches_when_youngest() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 5.0, 10.0), NodeId(0)).unwrap();
        let joiner = profile(9, 9.0, 95.0); // youngest member
        let all: Vec<NodeId> = tree.attached_by_depth().collect();
        let c = ctx(&tree, &joiner, &all, 100.0);
        assert_eq!(
            RelaxedTimeOrdered.select(&c, &ZeroProximity),
            JoinDecision::Attach { parent: NodeId(0) }
        );
    }

    #[test]
    fn both_are_centralized() {
        assert!(RelaxedBandwidthOrdered.is_centralized());
        assert!(RelaxedTimeOrdered.is_centralized());
        assert_eq!(RelaxedBandwidthOrdered.name(), "relaxed-bw-ordered");
        assert_eq!(RelaxedTimeOrdered.name(), "relaxed-time-ordered");
    }

    #[test]
    fn bandwidth_decay_rekeys_the_eviction_index() {
        // Regression for the indexed eviction path: `set_bandwidth` must
        // re-key the member's index entry, or a later ordered join probes
        // stale bandwidths and picks the wrong victim.
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 5.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 4.0, 0.0), NodeId(0)).unwrap();
        // Node 1 decays below node 2: the index must now rank it weakest.
        tree.set_bandwidth(NodeId(1), 2.0).unwrap();
        tree.check_invariants().unwrap();
        assert_eq!(tree.weakest_by_bandwidth(1), Some((2.0, NodeId(1))));
        let joiner = profile(9, 3.0, 10.0);
        let c = ctx(&tree, &joiner, &[], 10.0);
        assert_eq!(
            RelaxedBandwidthOrdered.select(&c, &ZeroProximity),
            JoinDecision::Replace { evict: NodeId(1) }
        );
    }

    #[test]
    fn bandwidth_decay_sheds_children_and_keeps_indices_coherent() {
        // Tail-first shedding drops subtrees out of the attached set; the
        // eviction and free-slot indices must follow, so the next ordered
        // join neither evicts a detached member nor misses the weakened
        // survivor.
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 3.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 4.0, 0.0), NodeId(0)).unwrap();
        tree.attach(profile(3, 1.0, 0.0), NodeId(1)).unwrap();
        tree.attach(profile(4, 1.5, 0.0), NodeId(1)).unwrap();
        // Capacity 3 → 1 sheds the most recently adopted child (node 4).
        let shed = tree.set_bandwidth(NodeId(1), 1.2).unwrap();
        assert_eq!(shed, vec![NodeId(4)]);
        tree.check_invariants().unwrap();
        // Depth 2 now holds only node 3; the shed node is unprobeable.
        assert_eq!(tree.weakest_by_bandwidth(2), Some((1.0, NodeId(3))));
        // A joiner stronger than the decayed node 1 (bw 1.2) but weaker
        // than node 2 evicts node 1 — the post-decay weakest at depth 1.
        let joiner = profile(9, 2.0, 10.0);
        let c = ctx(&tree, &joiner, &[], 10.0);
        assert_eq!(
            RelaxedBandwidthOrdered.select(&c, &ZeroProximity),
            JoinDecision::Replace { evict: NodeId(1) }
        );
    }

    #[test]
    fn root_is_never_evicted() {
        let tree = MulticastTree::new(profile(0, 0.1, 50.0), 1.0);
        let joiner = profile(9, 99.0, 0.0);
        let all: Vec<NodeId> = tree.attached_by_depth().collect();
        let c = ctx(&tree, &joiner, &all, 100.0);
        // Root is weaker and younger, but the search starts at depth 1;
        // root also has no free slot (capacity 0) so the result is Reject.
        assert_eq!(
            RelaxedBandwidthOrdered.select(&c, &ZeroProximity),
            JoinDecision::Reject
        );
        assert_eq!(
            RelaxedTimeOrdered.select(&c, &ZeroProximity),
            JoinDecision::Reject
        );
    }
}
