//! The longest-first baseline.

use crate::algorithms::{JoinContext, JoinDecision, TreeAlgorithm};
use crate::id::NodeId;
use crate::proximity::Proximity;

/// The longest-first algorithm of Sripanidkulchai et al. (§2.1, §5
/// algorithm 2).
///
/// "Selects the longest-lived member among those with spare bandwidth
/// capacities as the new member's parent": under a long-tailed lifetime
/// distribution the oldest visible member is the least likely to leave
/// soon. The paper shows this "turns out to yield poor performance since it
/// results in a tall tree" — old members accumulate at every depth, so
/// joiners burrow deep instead of filling shallow slots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LongestFirst;

impl TreeAlgorithm for LongestFirst {
    fn name(&self) -> &'static str {
        "longest-first"
    }

    fn select(&self, ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision {
        let mut best: Option<(f64, f64, NodeId)> = None;
        for &cand in ctx.candidates {
            let Some(ix) = ctx.tree.index_of(cand) else {
                continue;
            };
            if !ctx.tree.has_free_slot_ix(ix) || !ctx.tree.is_attached_ix(ix) {
                continue;
            }
            let p = ctx.tree.profile_ix(ix);
            let age = p.age(ctx.now);
            let delay = proximity.delay_ms(ctx.joiner.location, p.location);
            let better = match best {
                None => true,
                Some((bage, bdelay, bid)) => {
                    age > bage
                        || (age == bage && delay < bdelay)
                        || (age == bage && delay == bdelay && cand < bid)
                }
            };
            if better {
                best = Some((age, delay, cand));
            }
        }
        match best {
            Some((_, _, parent)) => JoinDecision::Attach { parent },
            None => JoinDecision::Reject,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Location;
    use crate::member::MemberProfile;
    use crate::proximity::ZeroProximity;
    use crate::tree::MulticastTree;
    use rom_sim::SimTime;

    fn profile(id: u64, bw: f64, join_secs: f64) -> MemberProfile {
        MemberProfile::new(
            NodeId(id),
            bw,
            SimTime::from_secs(join_secs),
            1e6,
            Location(id as u32),
        )
    }

    #[test]
    fn picks_oldest_with_capacity() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 2.0, 10.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 2.0, 5.0), NodeId(0)).unwrap(); // older than 1
        let joiner = profile(9, 1.0, 100.0);
        let candidates = vec![NodeId(1), NodeId(2)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::from_secs(100.0),
        };
        assert_eq!(
            LongestFirst.select(&ctx, &ZeroProximity),
            JoinDecision::Attach { parent: NodeId(2) }
        );
    }

    #[test]
    fn skips_full_members_even_if_oldest() {
        let mut tree = MulticastTree::new(profile(0, 10.0, 0.0), 1.0);
        tree.attach(profile(1, 1.0, 1.0), NodeId(0)).unwrap();
        tree.attach(profile(2, 2.0, 50.0), NodeId(1)).unwrap(); // node 1 now full
        let joiner = profile(9, 1.0, 100.0);
        let candidates = vec![NodeId(1), NodeId(2)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::from_secs(100.0),
        };
        // Node 1 is older but full → node 2.
        assert_eq!(
            LongestFirst.select(&ctx, &ZeroProximity),
            JoinDecision::Attach { parent: NodeId(2) }
        );
    }

    #[test]
    fn rejects_without_capacity() {
        let tree = MulticastTree::new(profile(0, 0.0, 0.0), 1.0);
        let joiner = profile(9, 1.0, 1.0);
        let candidates = vec![NodeId(0)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::from_secs(1.0),
        };
        assert_eq!(
            LongestFirst.select(&ctx, &ZeroProximity),
            JoinDecision::Reject
        );
        assert_eq!(LongestFirst.name(), "longest-first");
    }
}
