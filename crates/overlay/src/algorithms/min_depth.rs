//! The minimum-depth baseline.

use crate::algorithms::{min_depth_parent, JoinContext, JoinDecision, TreeAlgorithm};
use crate::proximity::Proximity;

/// The minimum-depth algorithm (§2.1, §5 algorithm 1).
///
/// "It searches from the tree root downward to the leaf layer to identify a
/// parent with spare bandwidth capacity for a new node to join. If there
/// are multiple choices, the nearest parent (in terms of network delay) is
/// chosen." The member consults only its partial view (up to 100 members),
/// so this is a distributed algorithm with no maintenance and no protocol
/// overhead — but it is "completely reliability-ignorant" (§6).
///
/// # Examples
///
/// ```
/// use rom_overlay::algorithms::{JoinContext, JoinDecision, MinimumDepth, TreeAlgorithm};
/// use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId, ZeroProximity};
/// use rom_sim::SimTime;
///
/// let source = MemberProfile::new(NodeId::SOURCE, 100.0, SimTime::ZERO, 1e9, Location(0));
/// let tree = MulticastTree::new(source, 1.0);
/// let joiner = MemberProfile::new(NodeId(1), 1.0, SimTime::ZERO, 600.0, Location(1));
/// let candidates = [NodeId::SOURCE];
///
/// let ctx = JoinContext { tree: &tree, joiner: &joiner, candidates: &candidates, now: SimTime::ZERO };
/// let decision = MinimumDepth.select(&ctx, &ZeroProximity);
/// assert_eq!(decision, JoinDecision::Attach { parent: NodeId::SOURCE });
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimumDepth;

impl TreeAlgorithm for MinimumDepth {
    fn name(&self) -> &'static str {
        "min-depth"
    }

    fn select(&self, ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision {
        match min_depth_parent(ctx, proximity) {
            Some(parent) => JoinDecision::Attach { parent },
            None => JoinDecision::Reject,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{Location, NodeId};
    use crate::member::MemberProfile;
    use crate::proximity::ZeroProximity;
    use crate::tree::MulticastTree;
    use rom_sim::SimTime;

    fn profile(id: u64, bw: f64) -> MemberProfile {
        MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
    }

    #[test]
    fn attaches_at_shallowest_free_slot() {
        let mut tree = MulticastTree::new(profile(0, 1.0), 1.0);
        tree.attach(profile(1, 2.0), NodeId(0)).unwrap(); // root full now
        tree.attach(profile(2, 2.0), NodeId(1)).unwrap();
        let joiner = profile(9, 0.5);
        let candidates = vec![NodeId(0), NodeId(1), NodeId(2)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::ZERO,
        };
        // Root full → node 1 at depth 1 wins over node 2 at depth 2.
        assert_eq!(
            MinimumDepth.select(&ctx, &ZeroProximity),
            JoinDecision::Attach { parent: NodeId(1) }
        );
    }

    #[test]
    fn rejects_when_view_has_no_capacity() {
        let tree = MulticastTree::new(profile(0, 0.0), 1.0);
        let joiner = profile(9, 1.0);
        let candidates = vec![NodeId(0)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::ZERO,
        };
        assert_eq!(
            MinimumDepth.select(&ctx, &ZeroProximity),
            JoinDecision::Reject
        );
    }

    #[test]
    fn is_distributed() {
        assert!(!MinimumDepth.is_centralized());
        assert_eq!(MinimumDepth.name(), "min-depth");
    }
}
