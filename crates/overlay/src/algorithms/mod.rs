//! Tree-construction algorithms.
//!
//! The paper evaluates five ways of deciding where a (re)joining member
//! attaches (§5). Four are baselines implemented here; the fifth — ROST —
//! lives in the `rom-rost` crate and reuses the minimum-depth join rule,
//! adding its switching maintenance on top.
//!
//! | algorithm | knowledge | principle |
//! |---|---|---|
//! | [`MinimumDepth`] | partial view | shallowest parent with a free slot, nearest on ties |
//! | [`LongestFirst`] | partial view | oldest parent with a free slot |
//! | [`RelaxedBandwidthOrdered`] | global (centralized) | evict the shallowest smaller-bandwidth node |
//! | [`RelaxedTimeOrdered`] | global (centralized) | evict the shallowest younger node |

mod longest_first;
mod min_depth;
mod ordered;

pub use longest_first::LongestFirst;
pub use min_depth::MinimumDepth;
pub use ordered::{RelaxedBandwidthOrdered, RelaxedTimeOrdered};

use rom_sim::SimTime;

use crate::id::NodeId;
use crate::member::MemberProfile;
use crate::proximity::Proximity;
use crate::tree::MulticastTree;

/// Everything an algorithm may consult when placing one member.
#[derive(Debug)]
pub struct JoinContext<'a> {
    /// The current tree (read-only; the engine applies the decision).
    pub tree: &'a MulticastTree,
    /// The member being placed. For a rejoin this is the member's original
    /// profile — its age is preserved.
    pub joiner: &'a MemberProfile,
    /// Candidate parents. For distributed algorithms this is the joiner's
    /// partial view; the engine guarantees candidates are attached and
    /// outside the joiner's own subtree. Centralized algorithms ignore
    /// this field entirely — they read the whole attached membership
    /// through the tree's indices — so the engine passes an empty slice
    /// for them.
    pub candidates: &'a [NodeId],
    /// Current simulation time (for age/BTP computations).
    pub now: SimTime,
}

/// An algorithm's placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinDecision {
    /// Attach the joiner as a new leaf under `parent`.
    Attach {
        /// The chosen parent.
        parent: NodeId,
    },
    /// Take over `evict`'s position; the evictee (and possibly some of its
    /// children) must rejoin. Only centralized algorithms emit this.
    Replace {
        /// The member being evicted.
        evict: NodeId,
    },
    /// No feasible placement among the candidates (the engine retries with
    /// a fresh view).
    Reject,
}

/// A strategy for placing joining and rejoining members.
///
/// Implementations must be deterministic functions of the context — any
/// randomness (view sampling) happens before the call.
pub trait TreeAlgorithm: std::fmt::Debug {
    /// Short name used in reports (e.g. `"min-depth"`).
    fn name(&self) -> &'static str;

    /// True if the algorithm needs global topology information (§5 notes
    /// the relaxed ordered baselines "assume a central administrator").
    /// The engine then passes all attached members as candidates.
    fn is_centralized(&self) -> bool {
        false
    }

    /// Chooses a placement for `ctx.joiner`.
    fn select(&self, ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> JoinDecision;
}

/// Shared helper: the minimum-depth parent choice used by both
/// [`MinimumDepth`] itself and ROST's join rule — the shallowest candidate
/// with a free slot, breaking layer ties by network delay and then by id
/// (§3.3).
#[must_use]
pub fn min_depth_parent(ctx: &JoinContext<'_>, proximity: &dyn Proximity) -> Option<NodeId> {
    let mut best: Option<(usize, f64, NodeId)> = None;
    for &cand in ctx.candidates {
        // One id→index lookup per candidate; every later access is a
        // direct arena read.
        let Some(ix) = ctx.tree.index_of(cand) else {
            continue;
        };
        if !ctx.tree.has_free_slot_ix(ix) {
            continue;
        }
        let Some(depth) = ctx.tree.depth_ix(ix) else {
            continue;
        };
        let key_delay = || {
            let loc = ctx.tree.profile_ix(ix).location;
            proximity.delay_ms(ctx.joiner.location, loc)
        };
        match best {
            None => best = Some((depth, key_delay(), cand)),
            Some((bd, bdelay, bid)) => {
                if depth < bd {
                    best = Some((depth, key_delay(), cand));
                } else if depth == bd {
                    let delay = key_delay();
                    if delay < bdelay || (delay == bdelay && cand < bid) {
                        best = Some((depth, delay, cand));
                    }
                }
            }
        }
    }
    best.map(|(_, _, id)| id)
}

/// Centralized [`min_depth_parent`]: the same minimum-depth rule over the
/// *entire* attached membership, answered from the tree's per-depth
/// free-slot index instead of a materialized candidate list. The first
/// layer with spare capacity decides the depth (deeper members can never
/// win the depth-first ordering), and within it the id-ordered free-slot
/// entries reproduce the candidate scan's (delay, id) tie-break exactly.
/// Detached members — including the joiner's own orphaned subtree — are
/// never in the index, matching the engine's candidate filtering.
#[must_use]
pub fn min_depth_parent_indexed(
    tree: &MulticastTree,
    joiner: &MemberProfile,
    proximity: &dyn Proximity,
) -> Option<NodeId> {
    let depth = tree.shallowest_free_depth()?;
    let mut best: Option<(f64, NodeId)> = None;
    for (cand, ix) in tree.free_slot_entries(depth) {
        let loc = tree.profile_ix(ix).location;
        let delay = proximity.delay_ms(joiner.location, loc);
        let better = match best {
            None => true,
            Some((bdelay, bid)) => delay < bdelay || (delay == bdelay && cand < bid),
        };
        if better {
            best = Some((delay, cand));
        }
    }
    best.map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Location;
    use crate::proximity::{IndexProximity, ZeroProximity};

    pub(crate) fn profile(id: u64, bw: f64, join_secs: f64, loc: u32) -> MemberProfile {
        MemberProfile::new(
            NodeId(id),
            bw,
            SimTime::from_secs(join_secs),
            1e6,
            Location(loc),
        )
    }

    #[test]
    fn min_depth_parent_prefers_shallow_then_near() {
        let mut tree = MulticastTree::new(profile(0, 2.0, 0.0, 0), 1.0);
        tree.attach(profile(1, 2.0, 0.0, 10), NodeId(0)).unwrap();
        tree.attach(profile(2, 2.0, 0.0, 3), NodeId(0)).unwrap();
        tree.attach(profile(3, 2.0, 0.0, 1), NodeId(1)).unwrap();
        let joiner = profile(9, 1.0, 5.0, 2);
        let candidates = vec![NodeId(1), NodeId(2), NodeId(3)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::from_secs(5.0),
        };
        // Nodes 1 and 2 are both depth 1; node 2 (loc 3) is nearer to
        // loc 2 than node 1 (loc 10).
        assert_eq!(min_depth_parent(&ctx, &IndexProximity), Some(NodeId(2)));
        // With flat proximity the tie breaks to the smaller id.
        assert_eq!(min_depth_parent(&ctx, &ZeroProximity), Some(NodeId(1)));
    }

    #[test]
    fn min_depth_parent_skips_full_and_detached() {
        let mut tree = MulticastTree::new(profile(0, 1.0, 0.0, 0), 1.0);
        tree.attach(profile(1, 1.0, 0.0, 1), NodeId(0)).unwrap(); // root now full
        tree.attach(profile(2, 0.0, 0.0, 2), NodeId(1)).unwrap(); // free-rider
        let joiner = profile(9, 1.0, 5.0, 5);
        let candidates = vec![NodeId(0), NodeId(2)];
        let ctx = JoinContext {
            tree: &tree,
            joiner: &joiner,
            candidates: &candidates,
            now: SimTime::from_secs(5.0),
        };
        assert_eq!(min_depth_parent(&ctx, &ZeroProximity), None);
    }
}
