//! Identifiers for overlay members and their underlay attachment points.

use std::fmt;

/// Identifier of an overlay multicast member.
///
/// Every participant in a multicast session — the source and all receivers —
/// has a unique `NodeId`. In this workspace ids are assigned sequentially by
/// the workload generator; id 0 is conventionally the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The conventional id of the multicast source.
    pub const SOURCE: NodeId = NodeId(0);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An opaque underlay attachment point.
///
/// The overlay crate does not know about network topology; it only carries
/// this token so that a [`Proximity`](crate::Proximity) implementation (the
/// engine wires in `rom-net`'s delay oracle) can measure distances between
/// members. The value is the underlay node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(pub u32);

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(Location(9).to_string(), "loc9");
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::SOURCE, NodeId(0));
    }

    #[test]
    fn usable_as_map_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert(NodeId(1), "a");
        m.insert(NodeId(2), "b");
        assert_eq!(m[&NodeId(1)], "a");
    }
}
