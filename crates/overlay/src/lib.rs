//! # rom-overlay: the overlay multicast substrate
//!
//! The common machinery beneath every tree-construction algorithm in the
//! DSN 2006 reproduction:
//!
//! - [`NodeId`] / [`Location`] / [`MemberProfile`] — members and their
//!   bandwidth/time properties (including the BTP, §3.2),
//! - [`MulticastTree`] — the degree-constrained delivery tree with the
//!   restructuring primitives the algorithms need (attach, abrupt removal
//!   with orphaned subtrees, eviction-style replacement, and ROST's
//!   parent-child switch),
//! - [`ViewSampler`] — bounded partial membership views (gossip in steady
//!   state),
//! - [`Proximity`] — the underlay-distance hook (wired to `rom-net` by the
//!   engine),
//! - [`algorithms`] — the four baseline construction algorithms the paper
//!   compares ROST against.
//!
//! # Examples
//!
//! Build a small tree with the minimum-depth rule and watch a departure
//! orphan a subtree:
//!
//! ```
//! use rom_overlay::algorithms::{JoinContext, JoinDecision, MinimumDepth, TreeAlgorithm};
//! use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId, ZeroProximity};
//! use rom_sim::SimTime;
//!
//! let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
//! for i in 1..=3u64 {
//!     let joiner = MemberProfile::new(NodeId(i), 2.0, SimTime::ZERO, 600.0, Location(i as u32));
//!     let candidates: Vec<NodeId> = tree.attached_by_depth().collect();
//!     let ctx = JoinContext { tree: &tree, joiner: &joiner, candidates: &candidates, now: SimTime::ZERO };
//!     match MinimumDepth.select(&ctx, &ZeroProximity) {
//!         JoinDecision::Attach { parent } => tree.attach(joiner, parent)?,
//!         _ => unreachable!("the source always has room here"),
//!     }
//! }
//! assert_eq!(tree.attached_count(), 4);
//!
//! let removed = tree.remove(NodeId(1))?;
//! assert!(tree.orphan_roots().count() == removed.orphaned_children.len());
//! # Ok::<(), rom_overlay::TreeError>(())
//! ```

pub mod algorithms;
mod error;
mod id;
mod member;
mod multitree;
mod proximity;
mod stats;
mod tree;
mod view;

pub use error::{InvariantViolation, TreeError};
pub use id::{Location, NodeId};
pub use member::MemberProfile;
pub use multitree::MultiTreeSession;
pub use proximity::{IndexProximity, Proximity, ZeroProximity};
pub use stats::TreeStats;
pub use tree::{paper_source, MulticastTree, NodeIndex, RemovedMember, ReplaceOutcome, SwitchRecord};
pub use view::ViewSampler;
