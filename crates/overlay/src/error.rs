//! Error types for overlay tree operations.

use std::error::Error;
use std::fmt;

use crate::id::NodeId;

/// Why a tree mutation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// The referenced member is not in the tree.
    UnknownMember(NodeId),
    /// A member with this id is already present.
    DuplicateMember(NodeId),
    /// The chosen parent has no spare out-degree.
    ParentFull(NodeId),
    /// The chosen parent is itself detached from the root.
    ParentDetached(NodeId),
    /// The operation would have to move or remove the multicast source.
    RootImmovable,
    /// The member is not an orphan subtree root (for reattach).
    NotAnOrphan(NodeId),
    /// The operation would create a cycle (e.g. reattaching a subtree
    /// beneath itself).
    WouldCycle(NodeId),
    /// The switch precondition failed: the node has no (non-root) parent.
    NoSwitchableParent(NodeId),
    /// The node cannot take over its parent's position because it cannot
    /// serve even the demoted parent (zero out-degree capacity).
    InsufficientCapacity(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownMember(n) => write!(f, "member {n} is not in the tree"),
            TreeError::DuplicateMember(n) => write!(f, "member {n} is already in the tree"),
            TreeError::ParentFull(n) => write!(f, "parent {n} has no spare out-degree"),
            TreeError::ParentDetached(n) => write!(f, "parent {n} is detached from the root"),
            TreeError::RootImmovable => write!(f, "the multicast source cannot be moved"),
            TreeError::NotAnOrphan(n) => write!(f, "member {n} is not an orphan subtree root"),
            TreeError::WouldCycle(n) => write!(f, "operation on {n} would create a cycle"),
            TreeError::NoSwitchableParent(n) => {
                write!(f, "member {n} has no parent it could switch with")
            }
            TreeError::InsufficientCapacity(n) => {
                write!(
                    f,
                    "member {n} lacks the capacity to take over its parent's position"
                )
            }
        }
    }
}

impl Error for TreeError {}

/// A violated structural invariant, reported by
/// [`MulticastTree::check_invariants`](crate::MulticastTree::check_invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    description: String,
}

impl InvariantViolation {
    pub(crate) fn new(description: String) -> Self {
        InvariantViolation { description }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tree invariant violated: {}", self.description)
    }
}

impl Error for InvariantViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TreeError::UnknownMember(NodeId(4))
            .to_string()
            .contains("n4"));
        assert!(TreeError::ParentFull(NodeId(1))
            .to_string()
            .contains("spare"));
        assert!(TreeError::RootImmovable.to_string().contains("source"));
        let v = InvariantViolation::new("depth mismatch".into());
        assert!(v.to_string().contains("depth mismatch"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TreeError>();
        assert_err::<InvariantViolation>();
    }
}
