//! Structural statistics over a multicast tree.
//!
//! The paper's analysis (§3.1, Fig. 1) argues in terms of tree *shape*:
//! short/wide versus tall/narrow, and how many descendants sit beneath the
//! members most likely to fail. [`TreeStats`] computes those shape
//! quantities in one pass; the probes, examples and figure binaries use it
//! to explain *why* an algorithm's disruption numbers come out as they do.

use crate::id::NodeId;
use crate::tree::MulticastTree;

/// A one-pass structural snapshot of the attached part of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of attached members, including the source.
    pub attached: usize,
    /// `depth_histogram[d]` = attached members at depth `d`.
    pub depth_histogram: Vec<usize>,
    /// Deepest attached layer.
    pub max_depth: usize,
    /// Mean depth over attached non-root members.
    pub mean_depth: f64,
    /// Attached members with at least one child.
    pub internal: usize,
    /// Attached members with no children.
    pub leaves: usize,
    /// Mean out-degree of internal members (the `d` of the paper's
    /// `2d + 1` switch cost).
    pub mean_internal_out_degree: f64,
    /// Mean number of descendants per attached non-root member — exactly
    /// the expected number of members disrupted by a uniformly random
    /// departure.
    pub mean_descendants: f64,
    /// The largest single-member subtree (worst-case blast radius of one
    /// departure), excluding the source.
    pub max_descendants: usize,
}

impl MulticastTree {
    /// Computes [`TreeStats`] for the currently attached members.
    ///
    /// # Examples
    ///
    /// ```
    /// use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
    /// use rom_sim::SimTime;
    ///
    /// let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    /// let m = |id: u64| MemberProfile::new(NodeId(id), 2.0, SimTime::ZERO, 1e6, Location(0));
    /// tree.attach(m(1), NodeId::SOURCE)?;
    /// tree.attach(m(2), NodeId(1))?;
    ///
    /// let stats = tree.stats();
    /// assert_eq!(stats.attached, 3);
    /// assert_eq!(stats.max_depth, 2);
    /// assert_eq!(stats.max_descendants, 1); // node 1's subtree below it
    /// # Ok::<(), rom_overlay::TreeError>(())
    /// ```
    #[must_use]
    pub fn stats(&self) -> TreeStats {
        let mut depth_histogram = Vec::new();
        let mut internal = 0usize;
        let mut leaves = 0usize;
        let mut fanout_total = 0usize;
        let mut depth_total = 0usize;
        let mut non_root = 0usize;

        // Descendant counts bottom-up: children before parents, which the
        // reverse of breadth-first order guarantees.
        let order: Vec<NodeId> = self.attached_by_depth().collect();
        let mut descendants: std::collections::BTreeMap<NodeId, usize> =
            std::collections::BTreeMap::new();
        for &id in order.iter().rev() {
            let child_total: usize = self
                .children(id)
                .map(|c| descendants.get(&c).copied().unwrap_or(0) + 1)
                .sum();
            descendants.insert(id, child_total);
        }

        let mut desc_total = 0usize;
        let mut max_descendants = 0usize;
        for &id in &order {
            let depth = self.depth(id).expect("attached");
            if depth_histogram.len() <= depth {
                depth_histogram.resize(depth + 1, 0);
            }
            depth_histogram[depth] += 1;
            let kids = self.child_count(id);
            if kids > 0 {
                internal += 1;
                fanout_total += kids;
            } else {
                leaves += 1;
            }
            if id != self.root() {
                non_root += 1;
                depth_total += depth;
                let d = descendants[&id];
                desc_total += d;
                max_descendants = max_descendants.max(d);
            }
        }

        TreeStats {
            attached: order.len(),
            max_depth: depth_histogram.len().saturating_sub(1),
            depth_histogram,
            mean_depth: if non_root == 0 {
                0.0
            } else {
                depth_total as f64 / non_root as f64
            },
            internal,
            leaves,
            mean_internal_out_degree: if internal == 0 {
                0.0
            } else {
                fanout_total as f64 / internal as f64
            },
            mean_descendants: if non_root == 0 {
                0.0
            } else {
                desc_total as f64 / non_root as f64
            },
            max_descendants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Location;
    use crate::member::MemberProfile;
    use crate::tree::paper_source;
    use rom_sim::SimTime;

    fn profile(id: u64, bw: f64) -> MemberProfile {
        MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
    }

    /// root ── 1 ── 2 ── 3, root ── 4 (a small mixed tree).
    fn sample() -> MulticastTree {
        let mut t = MulticastTree::new(paper_source(Location(0)), 1.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 1.0), NodeId(2)).unwrap();
        t.attach(profile(4, 1.0), NodeId(0)).unwrap();
        t
    }

    #[test]
    fn counts_and_histogram() {
        let s = sample().stats();
        assert_eq!(s.attached, 5);
        assert_eq!(s.depth_histogram, vec![1, 2, 1, 1]);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.internal, 3); // root, 1, 2
        assert_eq!(s.leaves, 2); // 3, 4
                                 // Depths of non-root members: 1, 2, 3, 1 → mean 1.75.
        assert!((s.mean_depth - 1.75).abs() < 1e-12);
        // Fanouts of internal members: 2, 1, 1 → mean 4/3.
        assert!((s.mean_internal_out_degree - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn descendant_statistics() {
        let s = sample().stats();
        // Descendants: n1→2, n2→1, n3→0, n4→0 → mean 0.75, max 2.
        assert!((s.mean_descendants - 0.75).abs() < 1e-12);
        assert_eq!(s.max_descendants, 2);
    }

    #[test]
    fn depth_and_descendant_sums_obey_the_pair_identity() {
        // Σ depth(non-root) counts every (ancestor-including-root, node)
        // pair; Σ descendants(non-root) counts every (non-root ancestor,
        // node) pair. Their difference is exactly the number of non-root
        // members (each contributes one pair with the root).
        let t = sample();
        let s = t.stats();
        let non_root = (s.attached - 1) as f64;
        let depth_sum = s.mean_depth * non_root;
        let desc_sum = s.mean_descendants * non_root;
        assert!((depth_sum - desc_sum - non_root).abs() < 1e-9);
    }

    #[test]
    fn root_only_tree() {
        let t = MulticastTree::new(paper_source(Location(0)), 1.0);
        let s = t.stats();
        assert_eq!(s.attached, 1);
        assert_eq!(s.mean_depth, 0.0);
        assert_eq!(s.mean_descendants, 0.0);
        assert_eq!(s.internal, 0);
        assert_eq!(s.leaves, 1);
    }

    #[test]
    fn detached_members_excluded() {
        let mut t = sample();
        t.remove(NodeId(1)).unwrap(); // orphans 2's subtree
        let s = t.stats();
        assert_eq!(s.attached, 2); // root and 4
        assert_eq!(s.max_depth, 1);
    }
}
