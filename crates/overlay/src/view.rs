//! Partial membership views.
//!
//! The paper's protocols are fully distributed: a joining member "queries
//! the existing members for information about other participants until it
//! obtains a certain number (say, 100) of known members" (§3.3), and during
//! the multicast "nodes periodically exchange neighbor information with
//! each other, so each node will know about a medium-sized (e.g., 100)
//! subset of other nodes" (§4.1).
//!
//! In the simulation we model the *steady state* of that gossip process:
//! whenever a member needs a view, [`ViewSampler`] draws a uniform random
//! subset of the current membership of the configured size. Centralized
//! baselines (the relaxed ordered algorithms) bypass the sampler and see
//! everything.

use rom_sim::SimRng;

use crate::id::NodeId;

/// Draws bounded random membership views, modelling gossip in steady state.
///
/// # Examples
///
/// ```
/// use rom_overlay::{NodeId, ViewSampler};
/// use rom_sim::SimRng;
///
/// let sampler = ViewSampler::new(3);
/// let live: Vec<NodeId> = (0..10).map(NodeId).collect();
/// let mut rng = SimRng::seed_from(1);
/// let view = sampler.sample(&live, &mut rng);
/// assert_eq!(view.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewSampler {
    view_size: usize,
}

impl ViewSampler {
    /// The paper's default view size of 100 known members.
    pub const PAPER_VIEW_SIZE: usize = 100;

    /// Creates a sampler producing views of at most `view_size` members.
    ///
    /// # Panics
    ///
    /// Panics if `view_size` is zero.
    #[must_use]
    pub fn new(view_size: usize) -> Self {
        assert!(view_size > 0, "view size must be positive");
        ViewSampler { view_size }
    }

    /// The paper's configuration (100 members).
    #[must_use]
    pub fn paper() -> Self {
        ViewSampler::new(Self::PAPER_VIEW_SIZE)
    }

    /// Maximum view size.
    #[must_use]
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// Samples a view from `membership` (distinct members, uniform without
    /// replacement). Returns the whole membership when it is smaller than
    /// the view size.
    #[must_use]
    pub fn sample(&self, membership: &[NodeId], rng: &mut SimRng) -> Vec<NodeId> {
        rng.sample(membership, self.view_size)
    }

    /// Samples a view excluding one member (a joiner never discovers
    /// itself; a rejoining member must not pick its own descendants —
    /// callers filter those separately).
    #[must_use]
    pub fn sample_excluding(
        &self,
        membership: &[NodeId],
        exclude: NodeId,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let filtered: Vec<NodeId> = membership
            .iter()
            .copied()
            .filter(|&m| m != exclude)
            .collect();
        rng.sample(&filtered, self.view_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn view_is_bounded_and_distinct() {
        let sampler = ViewSampler::new(10);
        let live = members(100);
        let mut rng = SimRng::seed_from(2);
        let view = sampler.sample(&live, &mut rng);
        assert_eq!(view.len(), 10);
        let mut sorted = view.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn small_membership_returned_whole() {
        let sampler = ViewSampler::new(10);
        let live = members(4);
        let mut rng = SimRng::seed_from(3);
        let mut view = sampler.sample(&live, &mut rng);
        view.sort();
        assert_eq!(view, live);
    }

    #[test]
    fn exclusion_respected() {
        let sampler = ViewSampler::new(50);
        let live = members(30);
        let mut rng = SimRng::seed_from(4);
        let view = sampler.sample_excluding(&live, NodeId(7), &mut rng);
        assert_eq!(view.len(), 29);
        assert!(!view.contains(&NodeId(7)));
    }

    #[test]
    fn views_cover_membership_over_time() {
        // Uniformity smoke test: over many draws every member appears.
        let sampler = ViewSampler::new(5);
        let live = members(20);
        let mut rng = SimRng::seed_from(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.extend(sampler.sample(&live, &mut rng));
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn paper_default() {
        assert_eq!(ViewSampler::paper().view_size(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_view_rejected() {
        let _ = ViewSampler::new(0);
    }
}
