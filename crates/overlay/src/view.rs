//! Partial membership views.
//!
//! The paper's protocols are fully distributed: a joining member "queries
//! the existing members for information about other participants until it
//! obtains a certain number (say, 100) of known members" (§3.3), and during
//! the multicast "nodes periodically exchange neighbor information with
//! each other, so each node will know about a medium-sized (e.g., 100)
//! subset of other nodes" (§4.1).
//!
//! In the simulation we model the *steady state* of that gossip process:
//! whenever a member needs a view, [`ViewSampler`] draws a uniform random
//! subset of the current membership of the configured size. Centralized
//! baselines (the relaxed ordered algorithms) bypass the sampler and see
//! everything.

use rom_sim::SimRng;

use crate::id::NodeId;

/// Draws bounded random membership views, modelling gossip in steady state.
///
/// # Examples
///
/// ```
/// use rom_overlay::{NodeId, ViewSampler};
/// use rom_sim::SimRng;
///
/// let sampler = ViewSampler::new(3);
/// let live: Vec<NodeId> = (0..10).map(NodeId).collect();
/// let mut rng = SimRng::seed_from(1);
/// let view = sampler.sample(&live, &mut rng);
/// assert_eq!(view.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewSampler {
    view_size: usize,
}

impl ViewSampler {
    /// The paper's default view size of 100 known members.
    pub const PAPER_VIEW_SIZE: usize = 100;

    /// Creates a sampler producing views of at most `view_size` members.
    ///
    /// # Panics
    ///
    /// Panics if `view_size` is zero.
    #[must_use]
    pub fn new(view_size: usize) -> Self {
        assert!(view_size > 0, "view size must be positive");
        ViewSampler { view_size }
    }

    /// The paper's configuration (100 members).
    #[must_use]
    pub fn paper() -> Self {
        ViewSampler::new(Self::PAPER_VIEW_SIZE)
    }

    /// Maximum view size.
    #[must_use]
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// Samples a view from `membership` (distinct members, uniform without
    /// replacement). Returns the whole membership when it is smaller than
    /// the view size.
    #[must_use]
    pub fn sample(&self, membership: &[NodeId], rng: &mut SimRng) -> Vec<NodeId> {
        rng.sample(membership, self.view_size)
    }

    /// Samples a view excluding one member (a joiner never discovers
    /// itself; a rejoining member must not pick its own descendants —
    /// callers filter those separately). `membership` must be
    /// duplicate-free, as a live-member list is.
    ///
    /// This scans for the excluded member's position; callers that
    /// already track positions should use
    /// [`sample_excluding_at`](Self::sample_excluding_at) directly.
    #[must_use]
    pub fn sample_excluding(
        &self,
        membership: &[NodeId],
        exclude: NodeId,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let pos = membership.iter().position(|&m| m == exclude);
        self.sample_excluding_at(membership, pos, rng)
    }

    /// [`sample_excluding`](Self::sample_excluding) with the excluded
    /// member's position supplied by the caller (`None` when the member
    /// is not in `membership`).
    ///
    /// Instead of materializing the filtered membership — an O(M) copy
    /// per join, which at 10^6 live members dwarfed the decision it fed —
    /// this samples *indices* of the virtual sequence with the excluded
    /// slot spliced out and shifts them past the hole. The index stream
    /// and the returned view are bitwise identical to filtering first.
    ///
    /// # Panics
    ///
    /// Panics if `exclude_pos` is out of range for `membership`.
    #[must_use]
    pub fn sample_excluding_at(
        &self,
        membership: &[NodeId],
        exclude_pos: Option<usize>,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let Some(hole) = exclude_pos else {
            return rng.sample(membership, self.view_size);
        };
        assert!(hole < membership.len(), "exclude position out of range");
        rng.sample_indices(membership.len() - 1, self.view_size)
            .into_iter()
            .map(|i| membership[if i < hole { i } else { i + 1 }])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn view_is_bounded_and_distinct() {
        let sampler = ViewSampler::new(10);
        let live = members(100);
        let mut rng = SimRng::seed_from(2);
        let view = sampler.sample(&live, &mut rng);
        assert_eq!(view.len(), 10);
        let mut sorted = view.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn small_membership_returned_whole() {
        let sampler = ViewSampler::new(10);
        let live = members(4);
        let mut rng = SimRng::seed_from(3);
        let mut view = sampler.sample(&live, &mut rng);
        view.sort();
        assert_eq!(view, live);
    }

    #[test]
    fn exclusion_respected() {
        let sampler = ViewSampler::new(50);
        let live = members(30);
        let mut rng = SimRng::seed_from(4);
        let view = sampler.sample_excluding(&live, NodeId(7), &mut rng);
        assert_eq!(view.len(), 29);
        assert!(!view.contains(&NodeId(7)));
    }

    #[test]
    fn positioned_sampling_matches_filtered_reference() {
        // `sample_excluding_at` must be bitwise-equivalent to filtering
        // the membership first (the pre-PR-10 implementation): identical
        // RNG consumption, identical view. Covers hole-at-ends,
        // hole-in-middle, absent member and both sampler code paths.
        for (n, view, hole) in [
            (30u64, 50, Some(0usize)),
            (30, 50, Some(29)),
            (500, 10, Some(250)),
            (5000, 100, Some(4321)),
            (5000, 100, None),
            (20000, 100, Some(12345)),
        ] {
            let sampler = ViewSampler::new(view);
            let live = members(n);
            let exclude = hole.map_or(NodeId(n + 1), |p| live[p]);

            let mut rng = SimRng::seed_from(6);
            let got = sampler.sample_excluding_at(&live, hole, &mut rng);

            let mut reference_rng = SimRng::seed_from(6);
            let filtered: Vec<NodeId> = live.iter().copied().filter(|&m| m != exclude).collect();
            let want = reference_rng.sample(&filtered, view);
            assert_eq!(got, want, "n={n} view={view} hole={hole:?}");
            assert_eq!(rng.uniform().to_bits(), reference_rng.uniform().to_bits());
        }
    }

    #[test]
    fn views_cover_membership_over_time() {
        // Uniformity smoke test: over many draws every member appears.
        let sampler = ViewSampler::new(5);
        let live = members(20);
        let mut rng = SimRng::seed_from(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.extend(sampler.sample(&live, &mut rng));
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn paper_default() {
        assert_eq!(ViewSampler::paper().view_size(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_view_rejected() {
        let _ = ViewSampler::new(0);
    }
}
