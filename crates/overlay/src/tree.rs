//! The overlay multicast tree.
//!
//! [`MulticastTree`] is the shared substrate of every construction
//! algorithm in this workspace: a single-source data-delivery tree whose
//! nodes have out-degree limits derived from their outbound bandwidths
//! (§1 of the paper). Besides plain attach/detach it implements the two
//! restructuring primitives the paper's algorithms need:
//!
//! - [`replace`](MulticastTree::replace) — a newcomer takes over an
//!   existing node's position (the relaxed bandwidth-/time-ordered
//!   baselines), displacing the evictee and any children beyond the
//!   newcomer's capacity;
//! - [`swap_with_parent`](MulticastTree::swap_with_parent) — ROST's
//!   switching operation (§3.3, Fig. 2): a child exchanges positions with
//!   its parent, excess grandchildren spilling into the promoted node's
//!   spare slots.
//!
//! When a node departs, its children become *orphan subtree roots*: their
//! subtrees stay intact but are detached from the source until the engine
//! rejoins them. The tree is therefore transiently a forest, and most
//! queries distinguish *attached* members (reachable from the source) from
//! detached ones.
//!
//! # Arena representation
//!
//! Internally the tree is a dense slab arena, not an id-keyed map: each
//! member's [`NodeId`] is interned to a [`NodeIndex`] (a `u32` slot
//! number) exactly once at insert, slots live in a flat `Vec`, and all
//! parent/child links are index-typed. A single sorted id→index map
//! remains for the operations whose *output* is id-ordered (member
//! iteration, invariant checks); everything else — walks, depth restamps,
//! the per-event hot paths of the construction algorithms — follows raw
//! indices with no map lookups and no per-call allocation. Removed slots
//! go on a free list and are reused (their child `Vec` allocation
//! included). The index assignment itself is deterministic for a given
//! operation sequence but deliberately unobservable: every public
//! iteration order is defined in terms of ids and depths, so the arena
//! produces byte-identical output to the id-keyed representation it
//! replaced.

// rom-lint: allow(send-hostile-state) -- RefCell is Send (only !Sync); the sweep engine moves each sim whole onto one worker, pinned by the Send assertion in rom-bench's sweep tests
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use rom_obs::Prof;
use rom_sim::SimTime;

use crate::error::{InvariantViolation, TreeError};
use crate::id::NodeId;
use crate::member::MemberProfile;

/// A member's slot number in the tree's internal arena.
///
/// Interned from the member's [`NodeId`] when it first enters the tree
/// (via [`MulticastTree::index_of`]); stable until the member is removed,
/// after which the slot may be reused for a different member. Index-based
/// accessors (`*_ix`) skip the id→index map entirely, which is what makes
/// the per-event hot paths allocation- and lookup-free.
///
/// Debug builds additionally stamp each index with the generation of the
/// slot it was minted from; every `*_ix` accessor verifies the stamp, so
/// an index held across a `remove`/`replace` panics at the first use
/// instead of silently aliasing whichever member recycled the slot. The
/// stamp (and every check) compiles out of release builds: there a
/// `NodeIndex` is exactly a `u32`.
#[derive(Debug, Clone, Copy)]
pub struct NodeIndex {
    ix: u32,
    /// The arena generation this index was minted under (debug only).
    #[cfg(debug_assertions)]
    generation: u32,
}

// Identity, ordering and hashing are over the slot number alone: the
// debug-only generation stamp must never change what release builds
// compare (NIL sentinels, stored parent/child links).
impl PartialEq for NodeIndex {
    fn eq(&self, other: &Self) -> bool {
        self.ix == other.ix
    }
}

impl Eq for NodeIndex {}

impl PartialOrd for NodeIndex {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeIndex {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ix.cmp(&other.ix)
    }
}

impl std::hash::Hash for NodeIndex {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ix.hash(state);
    }
}

impl NodeIndex {
    /// Sentinel for "no slot" (absent parent links, free-list markers).
    const NIL: NodeIndex = NodeIndex::mint(u32::MAX, 0);

    /// An index for slot `ix` minted under `_generation` (the parameter
    /// vanishes with the field in release builds).
    const fn mint(ix: u32, _generation: u32) -> NodeIndex {
        NodeIndex {
            ix,
            #[cfg(debug_assertions)]
            generation: _generation,
        }
    }

    /// The raw slot number as a `usize` (for array indexing).
    #[must_use]
    pub fn index(self) -> usize {
        self.ix as usize
    }
}

/// One arena slot. Size is audited: at `--mega` scale the arena holds a
/// million of these, so each slot byte is a megabyte of resident set.
/// Release layout is 96 bytes — `profile` 40 (id 8, bandwidth 8,
/// join\_time 8, lifetime 8, location 4+pad), `id` 8, `capacity` 8,
/// `parent` 4, `children` 24 (Vec header), `depth` 8, `attached` 1,
/// rounded up to 8-byte alignment. A regression test pins the total;
/// widen it only with an updated audit here.
#[derive(Debug, Clone)]
struct TreeSlot {
    /// The id this slot currently belongs to (stale once freed).
    id: NodeId,
    profile: MemberProfile,
    capacity: usize,
    /// `NodeIndex::NIL` for the root, orphan roots, and freed slots.
    parent: NodeIndex,
    children: Vec<NodeIndex>,
    depth: usize,
    attached: bool,
    /// Bumped each time the slot is freed, so indices minted before the
    /// free are detectably stale (debug only; absent in release).
    #[cfg(debug_assertions)]
    generation: u32,
}

/// Encodes a non-negative bandwidth as an order-preserving `u64` key:
/// for non-negative finite doubles the raw bit pattern already sorts
/// numerically, and adding `0.0` first collapses `-0.0` onto `0.0` so
/// bitwise key equality coincides with `==` (the comparison the layer
/// scan this index replaces used).
fn bw_order_key(bw: f64) -> u64 {
    (bw + 0.0).to_bits()
}

/// Encodes a join time as a `u64` that sorts *descending* in time (and
/// therefore ascending in age at any fixed `now`): the standard
/// sign-aware total-order bit trick, complemented. `SimTime` may be
/// negative, so both halves of the mapping are exercised.
fn join_order_key(t: SimTime) -> u64 {
    let bits = t.as_secs().to_bits();
    let ascending = if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    };
    !ascending
}

/// Recovers the exact join time a [`join_order_key`] was computed from,
/// so age probes can reproduce `MemberProfile::age` bit for bit without
/// a slot lookup.
fn join_order_key_decode(key: u64) -> f64 {
    let ascending = !key;
    if ascending >> 63 == 1 {
        f64::from_bits(ascending & !(1 << 63))
    } else {
        f64::from_bits(!ascending)
    }
}

/// One depth layer's ordered eviction indices: the attached occupants
/// keyed by the two order criteria the relaxed ordered algorithms evict
/// under (§5 algorithms 3–4). Both sets iterate weakest-first with ties
/// to the smallest id, so the eviction search probes the first entry
/// instead of scanning the layer.
#[derive(Debug, Clone, Default)]
struct EvictLayer {
    /// `(bw_order_key(bandwidth), id)` — ascending bandwidth, then id.
    by_bandwidth: BTreeSet<(u64, NodeId)>,
    /// `(join_order_key(join_time), id)` — descending join time (i.e.
    /// ascending age at any `now`), then id. Time-invariant: age order
    /// at every `now` is exactly reverse join-time order, so the index
    /// never needs restamping as the clock advances.
    by_join: BTreeSet<(u64, NodeId)>,
}

/// What [`MulticastTree::remove`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct RemovedMember {
    /// The departed member's profile.
    pub profile: MemberProfile,
    /// Children of the departed member, now orphan subtree roots that must
    /// rejoin the tree.
    pub orphaned_children: Vec<NodeId>,
    /// All descendants of the departed member (the members that experience
    /// a streaming disruption when the departure is abrupt).
    pub affected_descendants: Vec<NodeId>,
}

/// What [`MulticastTree::replace`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaceOutcome {
    /// Members that must rejoin: the evictee itself plus any of its former
    /// children that did not fit under the newcomer.
    pub displaced: Vec<NodeId>,
    /// Former children of the evictee now served by the newcomer.
    pub adopted: Vec<NodeId>,
}

/// What [`MulticastTree::swap_with_parent`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRecord {
    /// The node that moved up.
    pub promoted: NodeId,
    /// The former parent that moved down.
    pub demoted: NodeId,
    /// Number of members whose parent changed — the paper's ≈ 2d + 1
    /// protocol-overhead unit for one switch.
    pub parent_changes: usize,
    /// The members whose parent pointer changed (the promoted node, the
    /// demoted node, the siblings that followed, and the grandchildren the
    /// demoted node kept). Length equals `parent_changes`.
    pub reparented: Vec<NodeId>,
    /// Former children of the promoted node that were reconnected to it
    /// (they did not fit under the demoted node).
    pub spilled_to_promoted: Vec<NodeId>,
    /// Members that fit nowhere and must rejoin (only possible when the
    /// promoted node's capacity shrank concurrently; normally empty).
    pub displaced: Vec<NodeId>,
}

/// A single-source overlay multicast tree with degree constraints.
///
/// # Examples
///
/// ```
/// use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId};
/// use rom_sim::SimTime;
///
/// let source = MemberProfile::new(NodeId::SOURCE, 100.0, SimTime::ZERO, 1e9, Location(0));
/// let mut tree = MulticastTree::new(source, 1.0);
///
/// let m = MemberProfile::new(NodeId(1), 2.0, SimTime::ZERO, 600.0, Location(1));
/// tree.attach(m, NodeId::SOURCE)?;
/// assert_eq!(tree.depth(NodeId(1)), Some(1));
/// assert_eq!(tree.attached_count(), 2);
/// # Ok::<(), rom_overlay::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MulticastTree {
    stream_rate: f64,
    root: NodeId,
    root_ix: NodeIndex,
    /// The slab arena. Freed slots are recycled through `free`.
    slots: Vec<TreeSlot>,
    free: Vec<NodeIndex>,
    /// The single sorted id→index map; every id-ordered iteration the
    /// public API exposes is defined through it.
    ids: BTreeMap<NodeId, NodeIndex>,
    /// Attached members bucketed by depth, each layer sorted by id so
    /// iteration order is exactly (depth, id).
    depth_index: Vec<Vec<(NodeId, NodeIndex)>>,
    /// Per-depth ordered eviction indices (same length as `depth_index`),
    /// maintained alongside it so `find_eviction` probes the weakest
    /// entry per layer instead of scanning every member.
    evict_index: Vec<EvictLayer>,
    /// Per-depth attached members with at least one free forwarding slot
    /// (same length as `depth_index`), keyed by id so iteration within a
    /// layer is id-ordered. Lets the centralized minimum-depth fallback
    /// jump straight to the shallowest layer with spare capacity.
    free_index: Vec<BTreeMap<NodeId, NodeIndex>>,
    orphan_roots: BTreeSet<NodeId>,
    /// O(1) cache: total entries across `depth_index`.
    attached_total: usize,
    /// O(1) cache: index of the deepest non-empty layer.
    deepest: usize,
    /// Reusable frontier stack for `&self` walks (descendants,
    /// subtree_size); never held across a public call boundary.
    // rom-lint: allow(send-hostile-state) -- interior mutability is confined to &self walks within one call; the tree stays Send because RefCell<Vec<_>> is Send
    scratch: RefCell<Vec<NodeIndex>>,
    /// Reusable frontier stack for `&mut self` depth restamps.
    restamp_buf: Vec<(NodeIndex, usize)>,
    /// Span profiler handle (disabled by default; see
    /// [`set_prof`](Self::set_prof)). Wall-clock readings taken through it
    /// reach only the `.profile.json` sidecar, never the tree's outputs.
    prof: Prof,
}

impl MulticastTree {
    /// Creates a tree containing only the multicast source.
    ///
    /// # Panics
    ///
    /// Panics if `stream_rate` is not positive.
    #[must_use]
    pub fn new(source: MemberProfile, stream_rate: f64) -> Self {
        assert!(stream_rate > 0.0, "stream rate must be positive");
        let root = source.id;
        let capacity = source.out_capacity(stream_rate);
        let root_ix = NodeIndex::mint(0, 0);
        let root_evict = EvictLayer {
            by_bandwidth: BTreeSet::from([(bw_order_key(source.bandwidth), root)]),
            by_join: BTreeSet::from([(join_order_key(source.join_time), root)]),
        };
        let mut root_free = BTreeMap::new();
        if capacity > 0 {
            root_free.insert(root, root_ix);
        }
        let slots = vec![TreeSlot {
            id: root,
            profile: source,
            capacity,
            parent: NodeIndex::NIL,
            children: Vec::new(),
            depth: 0,
            attached: true,
            #[cfg(debug_assertions)]
            generation: 0,
        }];
        let mut ids = BTreeMap::new();
        ids.insert(root, root_ix);
        MulticastTree {
            stream_rate,
            root,
            root_ix,
            slots,
            free: Vec::new(),
            ids,
            depth_index: vec![vec![(root, root_ix)]],
            evict_index: vec![root_evict],
            free_index: vec![root_free],
            orphan_roots: BTreeSet::new(),
            attached_total: 1,
            deepest: 0,
            scratch: RefCell::new(Vec::new()), // rom-lint: allow(send-hostile-state) -- constructor for the allowed scratch field above
            restamp_buf: Vec::new(),
            prof: Prof::disabled(),
        }
    }

    /// Installs a span-profiler handle. Structural operations
    /// (`attach`/`reattach`/`remove`/`replace`/`usurp`/`swap_with_parent`
    /// and the eviction scan) record scope timings through it; with the
    /// default disabled handle each span is a single branch.
    pub fn set_prof(&mut self, prof: Prof) {
        self.prof = prof;
    }

    /// The tree's span-profiler handle (disabled unless installed via
    /// [`set_prof`](Self::set_prof)). Exposed so collaborating layers
    /// (algorithms, rost, cer) can open spans on the same profile tree
    /// without carrying their own handle.
    #[must_use]
    pub fn prof(&self) -> &Prof {
        &self.prof
    }

    #[inline]
    #[track_caller]
    fn s(&self, ix: NodeIndex) -> &TreeSlot {
        self.check_generation(ix);
        &self.slots[ix.index()]
    }

    #[inline]
    #[track_caller]
    fn sm(&mut self, ix: NodeIndex) -> &mut TreeSlot {
        self.check_generation(ix);
        &mut self.slots[ix.index()]
    }

    /// Debug-only use-after-free check: every slot access through an
    /// index verifies the index's generation stamp against the slot's
    /// current generation. A mismatch means the slot was freed (and
    /// possibly recycled for a different member) after the index was
    /// minted. Compiles to nothing in release builds.
    #[inline]
    #[track_caller]
    #[allow(unused_variables)] // `ix` is only consulted in debug builds
    fn check_generation(&self, ix: NodeIndex) {
        #[cfg(debug_assertions)]
        {
            let current = self.slots[ix.index()].generation;
            assert!(
                current == ix.generation,
                "stale NodeIndex: slot {} is at generation {current} but this index was \
                 minted at generation {} — the slot was freed (and possibly reused) since; \
                 re-intern via index_of",
                ix.index(),
                ix.generation,
            );
        }
    }

    /// Takes a slot for a new member, recycling a freed one (and its child
    /// `Vec` allocation) when available.
    fn alloc(
        &mut self,
        id: NodeId,
        profile: MemberProfile,
        capacity: usize,
        parent: NodeIndex,
        depth: usize,
        attached: bool,
    ) -> NodeIndex {
        if let Some(freed) = self.free.pop() {
            // `freed` still carries its pre-free generation stamp, so it
            // must not escape: access the slot by raw index and mint a
            // fresh index at the slot's current generation.
            let slot = &mut self.slots[freed.index()];
            slot.id = id;
            slot.profile = profile;
            slot.capacity = capacity;
            slot.parent = parent;
            slot.children.clear();
            slot.depth = depth;
            slot.attached = attached;
            #[cfg(debug_assertions)]
            let ix = NodeIndex::mint(freed.ix, slot.generation);
            #[cfg(not(debug_assertions))]
            let ix = freed;
            ix
        } else {
            assert!(
                self.slots.len() < NodeIndex::NIL.index(),
                "tree arena exhausted the u32 index space"
            );
            let ix = NodeIndex::mint(self.slots.len() as u32, 0);
            self.slots.push(TreeSlot {
                id,
                profile,
                capacity,
                parent,
                children: Vec::new(),
                depth,
                attached,
                #[cfg(debug_assertions)]
                generation: 0,
            });
            ix
        }
    }

    /// Returns a slot to the free list. The child `Vec` is kept (cleared)
    /// so its allocation is reused; `attached` is cleared so arena-wide
    /// scans (e.g. [`mean_internal_out_degree`](Self::mean_internal_out_degree))
    /// skip freed slots naturally.
    fn free_slot(&mut self, ix: NodeIndex) {
        let slot = &mut self.slots[ix.index()];
        slot.parent = NodeIndex::NIL;
        slot.children.clear();
        slot.attached = false;
        // Invalidate every outstanding index to this slot: uses before
        // the slot is even recycled are just as stale as uses after.
        #[cfg(debug_assertions)]
        {
            slot.generation = slot.generation.wrapping_add(1);
        }
        self.free.push(ix);
    }

    /// The multicast source.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The stream rate capacities are measured against.
    #[must_use]
    pub fn stream_rate(&self) -> f64 {
        self.stream_rate
    }

    /// Total members, attached or not (including the source).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if only the source is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.len() == 1
    }

    /// Number of members currently connected to the source. O(1): an
    /// incrementally maintained counter, not a per-layer sum.
    #[must_use]
    pub fn attached_count(&self) -> usize {
        self.attached_total
    }

    /// True if `id` is present (attached or orphaned).
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.ids.contains_key(&id)
    }

    /// The member's arena index, if present. Intern once, then use the
    /// `*_ix` accessors to skip the id→index map on every later access.
    #[must_use]
    pub fn index_of(&self, id: NodeId) -> Option<NodeIndex> {
        self.ids.get(&id).copied()
    }

    /// The id occupying arena slot `ix`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of bounds. Debug builds also panic if the
    /// slot was freed since `ix` was minted (generation check); release
    /// builds return whatever id currently occupies the slot — only pass
    /// indices obtained from this tree's current state.
    #[must_use]
    pub fn id_of(&self, ix: NodeIndex) -> NodeId {
        self.s(ix).id
    }

    /// True if `id` is present and connected to the source.
    #[must_use]
    pub fn is_attached(&self, id: NodeId) -> bool {
        self.index_of(id).is_some_and(|ix| self.s(ix).attached)
    }

    /// Index-typed [`is_attached`](Self::is_attached).
    #[must_use]
    pub fn is_attached_ix(&self, ix: NodeIndex) -> bool {
        self.s(ix).attached
    }

    /// The member's profile, if present.
    #[must_use]
    pub fn profile(&self, id: NodeId) -> Option<&MemberProfile> {
        self.index_of(id).map(|ix| &self.s(ix).profile)
    }

    /// Index-typed [`profile`](Self::profile).
    #[must_use]
    pub fn profile_ix(&self, ix: NodeIndex) -> &MemberProfile {
        &self.s(ix).profile
    }

    /// The member's parent; `None` for the root, orphan roots and unknown
    /// ids.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let ix = self.index_of(id)?;
        let p = self.s(ix).parent;
        (p != NodeIndex::NIL).then(|| self.s(p).id)
    }

    /// Index-typed [`parent`](Self::parent).
    #[must_use]
    pub fn parent_ix(&self, ix: NodeIndex) -> Option<NodeIndex> {
        let p = self.s(ix).parent;
        (p != NodeIndex::NIL).then_some(p)
    }

    /// The member's children in adoption order (empty for unknown ids).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let slice: &[NodeIndex] = self
            .index_of(id)
            .map_or(&[][..], |ix| &self.s(ix).children);
        slice.iter().map(move |&c| self.s(c).id)
    }

    /// The member's children as arena indices, in adoption order.
    #[must_use]
    pub fn children_ix(&self, ix: NodeIndex) -> &[NodeIndex] {
        &self.s(ix).children
    }

    /// Number of children of `id` (0 for unknown ids).
    #[must_use]
    pub fn child_count(&self, id: NodeId) -> usize {
        self.index_of(id).map_or(0, |ix| self.s(ix).children.len())
    }

    /// Index-typed [`child_count`](Self::child_count).
    #[must_use]
    pub fn child_count_ix(&self, ix: NodeIndex) -> usize {
        self.s(ix).children.len()
    }

    /// The member's depth below the source (root = 0); `None` when the
    /// member is detached or unknown.
    #[must_use]
    pub fn depth(&self, id: NodeId) -> Option<usize> {
        let slot = self.s(self.index_of(id)?);
        slot.attached.then_some(slot.depth)
    }

    /// Index-typed [`depth`](Self::depth).
    #[must_use]
    pub fn depth_ix(&self, ix: NodeIndex) -> Option<usize> {
        let slot = self.s(ix);
        slot.attached.then_some(slot.depth)
    }

    /// The member's out-degree capacity.
    #[must_use]
    pub fn capacity(&self, id: NodeId) -> usize {
        self.index_of(id).map_or(0, |ix| self.s(ix).capacity)
    }

    /// Index-typed [`capacity`](Self::capacity).
    #[must_use]
    pub fn capacity_ix(&self, ix: NodeIndex) -> usize {
        self.s(ix).capacity
    }

    /// Unused forwarding slots of `id` (0 for unknown ids).
    #[must_use]
    pub fn free_slots(&self, id: NodeId) -> usize {
        self.index_of(id).map_or(0, |ix| self.free_slots_ix(ix))
    }

    /// Index-typed [`free_slots`](Self::free_slots).
    #[must_use]
    pub fn free_slots_ix(&self, ix: NodeIndex) -> usize {
        let slot = self.s(ix);
        slot.capacity.saturating_sub(slot.children.len())
    }

    /// True if `id` can accept one more child.
    #[must_use]
    pub fn has_free_slot(&self, id: NodeId) -> bool {
        self.free_slots(id) > 0
    }

    /// Index-typed [`has_free_slot`](Self::has_free_slot).
    #[must_use]
    pub fn has_free_slot_ix(&self, ix: NodeIndex) -> bool {
        self.free_slots_ix(ix) > 0
    }

    /// Current orphan subtree roots, in id order.
    pub fn orphan_roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.orphan_roots.iter().copied()
    }

    /// All member ids, attached and detached, in id order.
    pub fn member_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.keys().copied()
    }

    /// All members with their arena indices, in id order.
    pub fn member_entries(&self) -> impl Iterator<Item = (NodeId, NodeIndex)> + '_ {
        self.ids.iter().map(|(&id, &ix)| (id, ix))
    }

    /// Attached members in breadth-first (depth, then id) order — the
    /// "search from high to low layers" order of the relaxed ordered
    /// algorithms.
    pub fn attached_by_depth(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.depth_index
            .iter()
            .flat_map(|layer| layer.iter().map(|&(id, _)| id))
    }

    /// The attached members at exactly `depth`, in id order.
    pub fn layer(&self, depth: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.layer_entries(depth).map(|(id, _)| id)
    }

    /// The attached members at exactly `depth` with their arena indices,
    /// in id order.
    pub fn layer_entries(&self, depth: usize) -> impl Iterator<Item = (NodeId, NodeIndex)> + '_ {
        self.depth_index
            .get(depth)
            .into_iter()
            .flat_map(|layer| layer.iter().copied())
    }

    /// The deepest attached layer index. O(1): maintained incrementally.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.deepest
    }

    /// The attached member at `depth` with the minimum (bandwidth, id) —
    /// the node the relaxed bandwidth-ordered eviction rule targets in
    /// that layer. Answered from the per-depth ordered index in
    /// O(log layer) instead of a layer scan. The returned bandwidth is
    /// numerically equal to the member's (`-0.0` reads back as `0.0`).
    #[must_use]
    pub fn weakest_by_bandwidth(&self, depth: usize) -> Option<(f64, NodeId)> {
        let layer = self.evict_index.get(depth)?;
        layer
            .by_bandwidth
            .iter()
            .next()
            .map(|&(key, id)| (f64::from_bits(key), id))
    }

    /// The attached member at `depth` with the minimum (age at `now`, id)
    /// — the relaxed time-ordered eviction target in that layer. The
    /// index is ordered by descending join time, which equals ascending
    /// age at any `now`; distinct join times can still collapse onto one
    /// age (the clamp at zero for not-yet-joined members, f64 subtraction
    /// rounding), so the id tie-break walks the equal-age prefix. Ages
    /// are recomputed exactly as [`MemberProfile::age`] computes them,
    /// from join times recovered bit-for-bit out of the index keys.
    #[must_use]
    pub fn weakest_by_age(&self, depth: usize, now: SimTime) -> Option<(f64, NodeId)> {
        let layer = self.evict_index.get(depth)?;
        let age_of = |key: u64| (now.as_secs() - join_order_key_decode(key)).max(0.0);
        let mut entries = layer.by_join.iter();
        let &(first_key, first_id) = entries.next()?;
        let age = age_of(first_key);
        let mut best = first_id;
        for &(key, id) in entries {
            if age_of(key) != age {
                break;
            }
            if id < best {
                best = id;
            }
        }
        Some((age, best))
    }

    /// The shallowest depth holding an attached member with at least one
    /// free forwarding slot — where the minimum-depth join rule will
    /// place the next leaf. O(max_depth) probes of per-depth free-slot
    /// maps instead of a scan over the whole membership.
    #[must_use]
    pub fn shallowest_free_depth(&self) -> Option<usize> {
        (0..=self.deepest).find(|&d| self.free_index.get(d).is_some_and(|m| !m.is_empty()))
    }

    /// The attached members at `depth` with at least one free forwarding
    /// slot, with their arena indices, in id order.
    pub fn free_slot_entries(&self, depth: usize) -> impl Iterator<Item = (NodeId, NodeIndex)> + '_ {
        self.free_index
            .get(depth)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&id, &ix)| (id, ix)))
    }

    /// Ancestors of `id` from its parent up to the subtree root (the source
    /// for attached members). Empty for roots and unknown ids.
    #[must_use]
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        self.ancestors_iter(id).collect()
    }

    /// Non-allocating [`ancestors`](Self::ancestors): walks parent links
    /// lazily.
    pub fn ancestors_iter(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self
            .index_of(id)
            .map_or(NodeIndex::NIL, |ix| self.s(ix).parent);
        std::iter::from_fn(move || {
            if cur == NodeIndex::NIL {
                return None;
            }
            let slot = self.s(cur);
            cur = slot.parent;
            Some(slot.id)
        })
    }

    /// True if `ancestor` lies on the path from `id` to its subtree root.
    #[must_use]
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> bool {
        let Some(ix) = self.index_of(id) else {
            return false;
        };
        let mut cur = self.s(ix).parent;
        while cur != NodeIndex::NIL {
            let slot = self.s(cur);
            if slot.id == ancestor {
                return true;
            }
            cur = slot.parent;
        }
        false
    }

    /// Depth of the lowest common ancestor of two *attached* members —
    /// the paper's loss-correlation level between a pair of receivers
    /// (`lca_depth(a, a)` is `a`'s own depth). `None` when either member
    /// is detached or unknown. Allocation-free: equalizes depths along
    /// parent links, then walks both paths up in lockstep.
    #[must_use]
    pub fn lca_depth(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let (mut x, mut y) = (self.index_of(a)?, self.index_of(b)?);
        let (sx, sy) = (self.s(x), self.s(y));
        if !sx.attached || !sy.attached {
            return None;
        }
        let (mut dx, mut dy) = (sx.depth, sy.depth);
        while dx > dy {
            x = self.s(x).parent;
            dx -= 1;
        }
        while dy > dx {
            y = self.s(y).parent;
            dy -= 1;
        }
        while x != y {
            x = self.s(x).parent;
            y = self.s(y).parent;
            dx -= 1;
        }
        Some(dx)
    }

    /// All descendants of `id` (excluding `id`), in the tree's canonical
    /// walk order (children in adoption order, deepest-last-child first).
    #[must_use]
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.descendants_into(id, &mut out);
        out
    }

    /// Appends the descendants of `id` to `out` (same order as
    /// [`descendants`](Self::descendants)) without allocating a frontier:
    /// callers that already own a buffer get an allocation-free walk.
    pub fn descendants_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        let Some(ix) = self.index_of(id) else {
            return;
        };
        let mut frontier = self.scratch.borrow_mut();
        frontier.clear();
        frontier.push(ix);
        while let Some(n) = frontier.pop() {
            for &c in &self.s(n).children {
                out.push(self.s(c).id);
                frontier.push(c);
            }
        }
    }

    /// Number of members in the subtree rooted at `id`, including `id`
    /// itself (0 for unknown ids). A counting walk — no result `Vec`.
    #[must_use]
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let Some(ix) = self.index_of(id) else {
            return 0;
        };
        let mut frontier = self.scratch.borrow_mut();
        frontier.clear();
        frontier.push(ix);
        let mut count = 0;
        while let Some(n) = frontier.pop() {
            count += 1;
            frontier.extend(self.s(n).children.iter().copied());
        }
        count
    }

    /// The overlay path from the source to `id` (inclusive), or `None` when
    /// `id` is detached or unknown. Exactly one allocation, filled
    /// backwards from the member's known depth.
    #[must_use]
    pub fn overlay_path(&self, id: NodeId) -> Option<Vec<NodeId>> {
        let ix = self.index_of(id)?;
        let slot = self.s(ix);
        if !slot.attached {
            return None;
        }
        let mut path = vec![id; slot.depth + 1];
        let mut cur = slot.parent;
        let mut i = slot.depth;
        while cur != NodeIndex::NIL {
            i -= 1;
            let s = self.s(cur);
            path[i] = s.id;
            cur = s.parent;
        }
        Some(path)
    }

    fn index_insert(&mut self, id: NodeId, ix: NodeIndex, depth: usize) {
        // Key material is read from the slot at insert time, so callers
        // must finalize the slot's profile/capacity/children first.
        let slot = &self.slots[ix.index()];
        let bw_key = bw_order_key(slot.profile.bandwidth);
        let join_key = join_order_key(slot.profile.join_time);
        let has_free = slot.capacity > slot.children.len();
        if self.depth_index.len() <= depth {
            self.depth_index.resize_with(depth + 1, Vec::new);
            self.evict_index.resize_with(depth + 1, EvictLayer::default);
            self.free_index.resize_with(depth + 1, BTreeMap::new);
        }
        let layer = &mut self.depth_index[depth];
        match layer.binary_search_by_key(&id, |e| e.0) {
            Ok(_) => debug_assert!(false, "duplicate depth-index entry for {id}"),
            Err(pos) => {
                layer.insert(pos, (id, ix));
                self.attached_total += 1;
                if depth > self.deepest {
                    self.deepest = depth;
                }
                let evict = &mut self.evict_index[depth];
                evict.by_bandwidth.insert((bw_key, id));
                evict.by_join.insert((join_key, id));
                if has_free {
                    self.free_index[depth].insert(id, ix);
                }
            }
        }
    }

    fn index_remove(&mut self, id: NodeId, ix: NodeIndex, depth: usize) {
        let slot = &self.slots[ix.index()];
        let bw_key = bw_order_key(slot.profile.bandwidth);
        let join_key = join_order_key(slot.profile.join_time);
        if let Some(layer) = self.depth_index.get_mut(depth) {
            if let Ok(pos) = layer.binary_search_by_key(&id, |e| e.0) {
                layer.remove(pos);
                self.attached_total -= 1;
                let evict = &mut self.evict_index[depth];
                evict.by_bandwidth.remove(&(bw_key, id));
                evict.by_join.remove(&(join_key, id));
                self.free_index[depth].remove(&id);
                while self.deepest > 0 && self.depth_index[self.deepest].is_empty() {
                    self.deepest -= 1;
                }
            }
        }
    }

    /// Re-evaluates `ix`'s membership in the free-slot index after a
    /// child-count or capacity change. Detached slots are never indexed,
    /// so the call is a no-op for them.
    fn refresh_free_slot(&mut self, ix: NodeIndex) {
        let slot = &self.slots[ix.index()];
        if !slot.attached {
            return;
        }
        let id = slot.id;
        let depth = slot.depth;
        if slot.capacity > slot.children.len() {
            self.free_index[depth].insert(id, ix);
        } else {
            self.free_index[depth].remove(&id);
        }
    }

    /// Moves the attached subtree rooted at `ix` one level shallower,
    /// re-homing each node's index entries. Used by the switch path for
    /// the grandchild subtrees that spill into the promoted node: their
    /// shape, attachment, and keys are unchanged — only depths shift.
    fn shift_subtree_up(&mut self, ix: NodeIndex) {
        let mut frontier = std::mem::take(&mut self.restamp_buf);
        frontier.clear();
        frontier.push((ix, 0));
        while let Some((n, _)) = frontier.pop() {
            let slot = &self.slots[n.index()];
            let id = slot.id;
            let old_depth = slot.depth;
            self.index_remove(id, n, old_depth);
            self.slots[n.index()].depth = old_depth - 1;
            self.index_insert(id, n, old_depth - 1);
            for &c in &self.slots[n.index()].children {
                frontier.push((c, 0));
            }
        }
        self.restamp_buf = frontier;
    }

    /// Marks the subtree rooted at `ix` attached/detached and rebuilds its
    /// depths starting from `base_depth`. Returns the subtree size. Uses
    /// the tree's reusable restamp stack — no per-call allocation.
    fn restamp_subtree(&mut self, ix: NodeIndex, base_depth: usize, attached: bool) -> usize {
        let mut count = 0;
        let mut frontier = std::mem::take(&mut self.restamp_buf);
        frontier.clear();
        frontier.push((ix, base_depth));
        while let Some((n, d)) = frontier.pop() {
            count += 1;
            let slot = &mut self.slots[n.index()];
            let was_attached = slot.attached;
            let old_depth = slot.depth;
            let id = slot.id;
            slot.attached = attached;
            slot.depth = d;
            if was_attached {
                self.index_remove(id, n, old_depth);
            }
            if attached {
                self.index_insert(id, n, d);
            }
            for &c in &self.slots[n.index()].children {
                frontier.push((c, d + 1));
            }
        }
        self.restamp_buf = frontier;
        count
    }

    /// Attaches a brand-new member as a leaf under `parent`.
    ///
    /// # Errors
    ///
    /// [`TreeError::DuplicateMember`] if the id is already present,
    /// [`TreeError::UnknownMember`] / [`TreeError::ParentDetached`] /
    /// [`TreeError::ParentFull`] if the parent cannot serve it.
    pub fn attach(&mut self, profile: MemberProfile, parent: NodeId) -> Result<(), TreeError> {
        let _span = self.prof.span("overlay.attach");
        let id = profile.id;
        if self.contains(id) {
            return Err(TreeError::DuplicateMember(id));
        }
        let pix = self
            .index_of(parent)
            .ok_or(TreeError::UnknownMember(parent))?;
        let pslot = self.s(pix);
        if !pslot.attached {
            return Err(TreeError::ParentDetached(parent));
        }
        if pslot.children.len() >= pslot.capacity {
            return Err(TreeError::ParentFull(parent));
        }
        let depth = pslot.depth + 1;
        let capacity = profile.out_capacity(self.stream_rate);
        let ix = self.alloc(id, profile, capacity, pix, depth, true);
        self.sm(pix).children.push(ix);
        self.refresh_free_slot(pix);
        self.ids.insert(id, ix);
        self.index_insert(id, ix, depth);
        Ok(())
    }

    /// Reattaches the orphan subtree rooted at `orphan` under `parent`.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAnOrphan`] if `orphan` is not currently an orphan
    /// subtree root, [`TreeError::WouldCycle`] if `parent` lies inside the
    /// orphan's own subtree, plus the same parent errors as
    /// [`attach`](Self::attach).
    pub fn reattach(&mut self, orphan: NodeId, parent: NodeId) -> Result<(), TreeError> {
        let _span = self.prof.span("overlay.reattach");
        if !self.orphan_roots.contains(&orphan) {
            return Err(TreeError::NotAnOrphan(orphan));
        }
        let pix = self
            .index_of(parent)
            .ok_or(TreeError::UnknownMember(parent))?;
        let pslot = self.s(pix);
        if !pslot.attached {
            // Covers both detached parents and parents inside this orphan's
            // own subtree (which are necessarily detached).
            if parent == orphan || self.is_ancestor(orphan, parent) {
                return Err(TreeError::WouldCycle(parent));
            }
            return Err(TreeError::ParentDetached(parent));
        }
        if pslot.children.len() >= pslot.capacity {
            return Err(TreeError::ParentFull(parent));
        }
        let base_depth = pslot.depth + 1;
        let oix = self.index_of(orphan).expect("orphan exists");
        self.sm(pix).children.push(oix);
        self.refresh_free_slot(pix);
        self.sm(oix).parent = pix;
        self.orphan_roots.remove(&orphan);
        self.restamp_subtree(oix, base_depth, true);
        Ok(())
    }

    /// Removes a member (abrupt departure). Its children become orphan
    /// subtree roots; the returned record lists them along with every
    /// affected descendant.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] for the source,
    /// [`TreeError::UnknownMember`] otherwise.
    pub fn remove(&mut self, id: NodeId) -> Result<RemovedMember, TreeError> {
        let _span = self.prof.span("overlay.remove");
        if id == self.root {
            return Err(TreeError::RootImmovable);
        }
        let Some(ix) = self.index_of(id) else {
            return Err(TreeError::UnknownMember(id));
        };
        let affected_descendants = self.descendants(id);
        let slot = self.s(ix);
        let profile = slot.profile.clone();
        let parent = slot.parent;
        let attached = slot.attached;
        let depth = slot.depth;
        let child_ixs = slot.children.clone();

        // Detach from the parent (if any).
        if parent != NodeIndex::NIL {
            self.sm(parent).children.retain(|&c| c != ix);
            self.refresh_free_slot(parent);
        }
        if attached {
            self.index_remove(id, ix, depth);
        }
        self.orphan_roots.remove(&id);

        // Children become orphan roots; their subtrees go detached.
        let orphaned_children: Vec<NodeId> = child_ixs.iter().map(|&c| self.s(c).id).collect();
        for (i, &c) in child_ixs.iter().enumerate() {
            self.sm(c).parent = NodeIndex::NIL;
            self.orphan_roots.insert(orphaned_children[i]);
            self.restamp_subtree(c, 0, false);
        }

        self.ids.remove(&id);
        self.free_slot(ix);
        Ok(RemovedMember {
            profile,
            orphaned_children,
            affected_descendants,
        })
    }

    /// A newcomer takes over `evict`'s position (relaxed ordered
    /// algorithms, §5): it inherits the evictee's parent and as many of the
    /// evictee's children as its capacity allows, preferring to keep the
    /// children ranked highest by `keep_priority`. The evictee and any
    /// overflow children become orphan roots listed in the outcome.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] if `evict` is the source,
    /// [`TreeError::DuplicateMember`] if the newcomer is already present,
    /// [`TreeError::UnknownMember`] if the evictee is absent or detached.
    pub fn replace(
        &mut self,
        evict: NodeId,
        newcomer: MemberProfile,
        keep_priority: impl Fn(&MemberProfile) -> f64,
    ) -> Result<ReplaceOutcome, TreeError> {
        let _span = self.prof.span("overlay.replace");
        if evict == self.root {
            return Err(TreeError::RootImmovable);
        }
        if self.contains(newcomer.id) {
            return Err(TreeError::DuplicateMember(newcomer.id));
        }
        let eix = self
            .index_of(evict)
            .ok_or(TreeError::UnknownMember(evict))?;
        let eslot = self.s(eix);
        if !eslot.attached {
            return Err(TreeError::UnknownMember(evict));
        }
        debug_assert!(
            eslot.parent != NodeIndex::NIL,
            "attached non-root has a parent"
        );
        let pix = eslot.parent;
        let depth = eslot.depth;
        let mut former: Vec<(NodeId, NodeIndex)> = eslot
            .children
            .iter()
            .map(|&c| (self.s(c).id, c))
            .collect();

        let new_id = newcomer.id;
        let new_capacity = newcomer.out_capacity(self.stream_rate);

        // Rank the evictee's children: highest priority kept, id tiebreak.
        former.sort_by(|a, b| {
            let pa = keep_priority(&self.s(a.1).profile);
            let pb = keep_priority(&self.s(b.1).profile);
            pb.total_cmp(&pa).then_with(|| a.0.cmp(&b.0))
        });
        let keep = former.len().min(new_capacity);
        let (adopted_pairs, overflow_pairs) = former.split_at(keep);

        // Install the newcomer and swap the parent's child pointer.
        let nix = self.alloc(new_id, newcomer, new_capacity, pix, depth, true);
        let siblings = &mut self.sm(pix).children;
        let pos = siblings.iter().position(|&c| c == eix).expect("linked");
        siblings[pos] = nix;
        let adopted_ix: Vec<NodeIndex> = adopted_pairs.iter().map(|&(_, c)| c).collect();
        self.sm(nix).children.extend(adopted_ix.iter().copied());
        self.ids.insert(new_id, nix);
        self.index_insert(new_id, nix, depth);
        for &c in &adopted_ix {
            self.sm(c).parent = nix;
        }
        // Depths below the adopted children are unchanged (same level).

        // Evictee becomes a childless orphan root.
        let eslot = self.sm(eix);
        eslot.parent = NodeIndex::NIL;
        eslot.children.clear();
        eslot.attached = false;
        self.index_remove(evict, eix, depth);
        self.orphan_roots.insert(evict);

        // Overflow children become orphan subtree roots.
        for &(cid, c) in overflow_pairs {
            self.sm(c).parent = NodeIndex::NIL;
            self.orphan_roots.insert(cid);
            self.restamp_subtree(c, 0, false);
        }

        let mut displaced = vec![evict];
        displaced.extend(overflow_pairs.iter().map(|&(cid, _)| cid));
        let adopted = adopted_pairs.iter().map(|&(cid, _)| cid).collect();
        Ok(ReplaceOutcome { displaced, adopted })
    }

    /// Like [`replace`](Self::replace), but the usurper is an existing
    /// orphan subtree root rejoining the tree (relaxed ordered algorithms
    /// apply the same eviction rule to rejoins as to joins, §5). The
    /// usurper keeps its own children; the evictee's children are adopted
    /// only into the usurper's *remaining* capacity, ranked by
    /// `keep_priority`.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAnOrphan`] if `usurper` is not an orphan subtree
    /// root, plus the same errors as [`replace`](Self::replace).
    pub fn usurp(
        &mut self,
        evict: NodeId,
        usurper: NodeId,
        keep_priority: impl Fn(&MemberProfile) -> f64,
    ) -> Result<ReplaceOutcome, TreeError> {
        let _span = self.prof.span("overlay.usurp");
        if evict == self.root {
            return Err(TreeError::RootImmovable);
        }
        if !self.orphan_roots.contains(&usurper) {
            return Err(TreeError::NotAnOrphan(usurper));
        }
        let eix = self
            .index_of(evict)
            .ok_or(TreeError::UnknownMember(evict))?;
        let eslot = self.s(eix);
        if !eslot.attached {
            return Err(TreeError::UnknownMember(evict));
        }
        debug_assert!(
            eslot.parent != NodeIndex::NIL,
            "attached non-root has a parent"
        );
        let pix = eslot.parent;
        let depth = eslot.depth;
        let mut former: Vec<(NodeId, NodeIndex)> = eslot
            .children
            .iter()
            .map(|&c| (self.s(c).id, c))
            .collect();

        let uix = self.index_of(usurper).expect("orphan exists");
        let spare = self.free_slots_ix(uix);

        // Swap the parent's child pointer.
        let siblings = &mut self.sm(pix).children;
        let pos = siblings.iter().position(|&c| c == eix).expect("linked");
        siblings[pos] = uix;

        former.sort_by(|a, b| {
            let pa = keep_priority(&self.s(a.1).profile);
            let pb = keep_priority(&self.s(b.1).profile);
            pb.total_cmp(&pa).then_with(|| a.0.cmp(&b.0))
        });
        let keep = former.len().min(spare);
        let (adopted_pairs, overflow_pairs) = former.split_at(keep);
        let adopted_ix: Vec<NodeIndex> = adopted_pairs.iter().map(|&(_, c)| c).collect();

        {
            let u = self.sm(uix);
            u.parent = pix;
            u.children.extend(adopted_ix.iter().copied());
        }
        self.orphan_roots.remove(&usurper);
        for &c in &adopted_ix {
            self.sm(c).parent = uix;
        }

        // Evictee becomes a childless orphan root.
        {
            let e = self.sm(eix);
            e.parent = NodeIndex::NIL;
            e.children.clear();
            e.attached = false;
        }
        self.index_remove(evict, eix, depth);
        self.orphan_roots.insert(evict);

        for &(cid, c) in overflow_pairs {
            self.sm(c).parent = NodeIndex::NIL;
            self.orphan_roots.insert(cid);
            self.restamp_subtree(c, 0, false);
        }

        // The usurper's whole subtree (its old children plus the adopted
        // ones) becomes attached at the evictee's former depth.
        self.restamp_subtree(uix, depth, true);

        let mut displaced = vec![evict];
        displaced.extend(overflow_pairs.iter().map(|&(cid, _)| cid));
        let adopted = adopted_pairs.iter().map(|&(cid, _)| cid).collect();
        Ok(ReplaceOutcome { displaced, adopted })
    }

    /// ROST's switching operation (§3.3, Fig. 2): `child` exchanges
    /// positions with its parent. The promoted child adopts its former
    /// siblings plus the demoted parent; the demoted parent keeps as many
    /// of the child's former children as fit, spilling the rest — highest
    /// `priority` first, as the paper prescribes — into the promoted
    /// node's spare slots.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownMember`] if `child` is absent,
    /// [`TreeError::RootImmovable`] if `child` is the source,
    /// [`TreeError::NoSwitchableParent`] if `child` is detached, an orphan
    /// root, or a direct child of the source with no non-root parent.
    pub fn swap_with_parent(
        &mut self,
        child: NodeId,
        priority: impl Fn(&MemberProfile) -> f64,
    ) -> Result<SwitchRecord, TreeError> {
        let _span = self.prof.span("overlay.switch");
        if child == self.root {
            return Err(TreeError::RootImmovable);
        }
        let cix = self
            .index_of(child)
            .ok_or(TreeError::UnknownMember(child))?;
        let cslot = self.s(cix);
        if !cslot.attached {
            return Err(TreeError::NoSwitchableParent(child));
        }
        if cslot.parent == NodeIndex::NIL {
            return Err(TreeError::NoSwitchableParent(child));
        }
        let pix = cslot.parent;
        if pix == self.root_ix {
            return Err(TreeError::NoSwitchableParent(child));
        }
        let child_capacity = cslot.capacity;
        let child_children: Vec<(NodeId, NodeIndex)> = cslot
            .children
            .iter()
            .map(|&c| (self.s(c).id, c))
            .collect();
        let pslot = self.s(pix);
        let parent = pslot.id;
        debug_assert!(
            pslot.parent != NodeIndex::NIL,
            "attached non-root parent has a parent"
        );
        let gix = pslot.parent;
        let parent_capacity = pslot.capacity;
        let parent_depth = pslot.depth;
        // Former siblings of the child (they will follow the promoted node).
        let siblings: Vec<(NodeId, NodeIndex)> = pslot
            .children
            .iter()
            .filter(|&&c| c != cix)
            .map(|&c| (self.s(c).id, c))
            .collect();

        if child_capacity == 0 {
            // The child cannot serve even the demoted parent.
            return Err(TreeError::InsufficientCapacity(child));
        }

        // The promoted node's new children: former siblings + the demoted
        // parent. Under ROST's bandwidth guard (child bw ≥ parent bw) all
        // siblings fit, because |siblings| + 1 ≤ parent capacity ≤ child
        // capacity; without the guard the lowest-priority siblings are
        // displaced to keep the tree legal.
        let mut ranked_siblings = siblings;
        ranked_siblings.sort_by(|a, b| {
            let pa = priority(&self.s(a.1).profile);
            let pb = priority(&self.s(b.1).profile);
            pb.total_cmp(&pa).then_with(|| a.0.cmp(&b.0))
        });
        let sibling_keep = ranked_siblings.len().min(child_capacity - 1);
        let (followed, displaced_siblings) = ranked_siblings.split_at(sibling_keep);

        // Distribute the child's former children: the demoted parent keeps
        // the lowest-priority ones, the highest-priority spill to the
        // promoted node's spare slots (paper: "chooses f, the node with the
        // largest BTP, and reconnects to node b").
        let mut ranked = child_children;
        ranked.sort_by(|a, b| {
            let pa = priority(&self.s(a.1).profile);
            let pb = priority(&self.s(b.1).profile);
            pb.total_cmp(&pa).then_with(|| a.0.cmp(&b.0))
        });
        let keep_count = ranked.len().min(parent_capacity);
        let spill_count = ranked.len() - keep_count;
        let (spilled, kept) = ranked.split_at(spill_count);

        let spare = child_capacity.saturating_sub(followed.len() + 1);
        let to_spare = spilled.len().min(spare);
        let (to_promoted, overflow) = spilled.split_at(to_spare);
        let mut displaced: Vec<(NodeId, NodeIndex)> = overflow.to_vec();
        displaced.extend(displaced_siblings.iter().copied());

        // Count parent-pointer changes before surgery: the promoted child,
        // the demoted parent, every sibling that followed the promotion,
        // and every former child of the promoted node that stays with the
        // demoted parent. Spilled nodes keep their parent (the promoted
        // node) and displaced nodes are counted by the rejoin they
        // trigger, not here.
        let parent_changes = 2 + followed.len() + kept.len();
        let mut reparented = vec![child, parent];
        reparented.extend(followed.iter().map(|&(id, _)| id));
        reparented.extend(kept.iter().map(|&(id, _)| id));

        // --- pointer surgery ---
        let gp_children = &mut self.sm(gix).children;
        let pos = gp_children
            .iter()
            .position(|&c| c == pix)
            .expect("linked");
        gp_children[pos] = cix;

        {
            let cslot = self.sm(cix);
            cslot.parent = gix;
            cslot.children.clear();
        }
        // Promoted child's new children, in order: followed siblings, the
        // demoted parent, then the spilled grandchildren.
        let mut promoted_children: Vec<NodeIndex> =
            followed.iter().map(|&(_, c)| c).collect();
        promoted_children.push(pix);
        promoted_children.extend(to_promoted.iter().map(|&(_, c)| c));
        self.sm(cix).children = promoted_children;
        {
            let pslot = self.sm(pix);
            pslot.parent = cix;
            pslot.children.clear();
        }
        let kept_ix: Vec<NodeIndex> = kept.iter().map(|&(_, c)| c).collect();
        self.sm(pix).children.extend(kept_ix.iter().copied());
        for &(_, s) in followed {
            self.sm(s).parent = cix;
        }
        for &k in &kept_ix {
            self.sm(k).parent = pix;
        }
        for &(_, t) in to_promoted {
            self.sm(t).parent = cix;
        }
        for &(did, d) in &displaced {
            self.sm(d).parent = NodeIndex::NIL;
            self.orphan_roots.insert(did);
            self.restamp_subtree(d, 0, false);
        }

        // Depths: a switch only perturbs depths by ±1 inside known
        // partitions, so the former full-subtree restamp reduces to
        // incremental index maintenance. The promoted child rises one
        // level and the demoted parent sinks one; followed siblings and
        // kept grandchildren keep their depths (only their parent pointer
        // changed, which no index keys on); each subtree spilled to the
        // promoted node rises one level wholesale, shape intact. Nothing
        // here changes attachment, and index entries move only after the
        // children lists above are final so free-slot membership is
        // computed on the post-switch shape.
        {
            let _restamp = self.prof.span("overlay.switch_restamp");
            self.index_remove(child, cix, parent_depth + 1);
            self.index_remove(parent, pix, parent_depth);
            self.slots[cix.index()].depth = parent_depth;
            self.slots[pix.index()].depth = parent_depth + 1;
            self.index_insert(child, cix, parent_depth);
            self.index_insert(parent, pix, parent_depth + 1);
            for &(_, t) in to_promoted {
                self.shift_subtree_up(t);
            }
        }

        Ok(SwitchRecord {
            promoted: child,
            demoted: parent,
            parent_changes,
            reparented,
            spilled_to_promoted: to_promoted.iter().map(|&(id, _)| id).collect(),
            displaced: displaced.iter().map(|&(id, _)| id).collect(),
        })
    }

    /// Changes `id`'s outbound bandwidth in place (access-link
    /// degradation). The member's out-degree capacity is recomputed from
    /// the new bandwidth; if it now serves more children than it can
    /// afford, the most recently adopted children are detached into
    /// orphan subtree roots (the same recovery path an abrupt departure
    /// triggers) and returned, in detachment order.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownMember`] if `id` is not in the tree.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is negative or not finite.
    pub fn set_bandwidth(&mut self, id: NodeId, bandwidth: f64) -> Result<Vec<NodeId>, TreeError> {
        assert!(
            bandwidth >= 0.0 && bandwidth.is_finite(),
            "bandwidth must be finite and non-negative"
        );
        let ix = self.index_of(id).ok_or(TreeError::UnknownMember(id))?;
        let rate = self.stream_rate;
        let slot = &mut self.slots[ix.index()];
        let attached = slot.attached;
        let depth = slot.depth;
        let old_bw_key = bw_order_key(slot.profile.bandwidth);
        slot.profile.bandwidth = bandwidth;
        slot.capacity = slot.profile.out_capacity(rate);
        let mut shed_ix = Vec::new();
        while slot.children.len() > slot.capacity {
            if let Some(child) = slot.children.pop() {
                shed_ix.push(child);
            } else {
                break;
            }
        }
        // Re-key the member's eviction-index entry under its new
        // bandwidth (join time is untouched, so `by_join` stands), and
        // re-evaluate its free-slot membership once shedding settles the
        // child count. Detached members carry no index entries.
        if attached {
            let evict = &mut self.evict_index[depth];
            evict.by_bandwidth.remove(&(old_bw_key, id));
            evict.by_bandwidth.insert((bw_order_key(bandwidth), id));
        }
        let shed: Vec<NodeId> = shed_ix.iter().map(|&c| self.s(c).id).collect();
        for (i, &c) in shed_ix.iter().enumerate() {
            self.sm(c).parent = NodeIndex::NIL;
            self.orphan_roots.insert(shed[i]);
            self.restamp_subtree(c, 0, false);
        }
        if attached {
            self.refresh_free_slot(ix);
        }
        Ok(shed)
    }

    /// Mean out-degree of attached members that have at least one child —
    /// the `d` of the paper's `2d + 1` switch-overhead estimate. A
    /// contiguous scan of the arena (freed slots are detached and
    /// childless, so they filter out naturally).
    #[must_use]
    pub fn mean_internal_out_degree(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for slot in &self.slots {
            if slot.attached && !slot.children.is_empty() {
                total += slot.children.len();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Test helper: forcibly detaches `id` (with its subtree) into orphan
    /// state without removing any member.
    #[cfg(test)]
    pub(crate) fn remove_parent_link_for_test(&mut self, id: NodeId) {
        let ix = self.index_of(id).expect("exists");
        let pix = self.s(ix).parent;
        assert!(pix != NodeIndex::NIL, "test node has a parent");
        self.sm(pix).children.retain(|&c| c != ix);
        self.refresh_free_slot(pix);
        self.sm(ix).parent = NodeIndex::NIL;
        self.orphan_roots.insert(id);
        self.restamp_subtree(ix, 0, false);
    }

    /// Verifies every structural invariant; used by tests and property
    /// tests after each mutation.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |msg: String| Err(InvariantViolation::new(msg));

        // Arena bookkeeping sanity.
        if self.ids.len() + self.free.len() != self.slots.len() {
            return fail(format!(
                "{} ids + {} free slots != {} arena slots",
                self.ids.len(),
                self.free.len(),
                self.slots.len()
            ));
        }

        // Root sanity.
        let root_slot = match self.index_of(self.root) {
            Some(ix) if ix == self.root_ix => self.s(ix),
            _ => return fail("root is missing".into()),
        };
        if !root_slot.attached || root_slot.depth != 0 || root_slot.parent != NodeIndex::NIL {
            return fail("root must be attached at depth 0 with no parent".into());
        }

        let mut reachable = 0usize;
        for (&id, &ix) in &self.ids {
            let slot = self.s(ix);
            // Interning consistency.
            if slot.id != id {
                return fail(format!("{id} interned to slot holding {}", slot.id));
            }
            // Degree constraint.
            if slot.children.len() > slot.capacity {
                return fail(format!(
                    "{id} has {} children but capacity {}",
                    slot.children.len(),
                    slot.capacity
                ));
            }
            // Parent/child pointer symmetry.
            if slot.parent != NodeIndex::NIL {
                let p = self.s(slot.parent).id;
                let pslot = self.s(slot.parent);
                if !pslot.children.contains(&ix) {
                    return fail(format!("{p} does not list child {id}"));
                }
                if slot.attached {
                    if !pslot.attached {
                        return fail(format!("attached {id} under detached parent {p}"));
                    }
                    if slot.depth != pslot.depth + 1 {
                        return fail(format!(
                            "{id} depth {} but parent depth {}",
                            slot.depth, pslot.depth
                        ));
                    }
                }
            } else if id != self.root && !self.orphan_roots.contains(&id) {
                return fail(format!("{id} has no parent but is not an orphan root"));
            }
            for &c in &slot.children {
                let cslot = self.s(c);
                if self.index_of(cslot.id) != Some(c) {
                    return fail(format!("{id} lists missing child slot {}", c.index()));
                }
                if cslot.parent != ix {
                    return fail(format!("{} does not point back at parent {id}", cslot.id));
                }
            }
            // Depth-index agreement.
            if slot.attached {
                reachable += 1;
                let in_index = self.depth_index.get(slot.depth).is_some_and(|l| {
                    l.binary_search_by_key(&id, |e| e.0)
                        .is_ok_and(|pos| l[pos].1 == ix)
                });
                if !in_index {
                    return fail(format!("{id} missing from depth index at {}", slot.depth));
                }
            }
        }

        // Index contains nothing extra, layers are id-sorted, and the O(1)
        // caches agree with a recount.
        let indexed: usize = self.depth_index.iter().map(Vec::len).sum();
        if indexed != reachable {
            return fail(format!(
                "depth index holds {indexed} ids but {reachable} attached members exist"
            ));
        }
        if self.attached_total != reachable {
            return fail(format!(
                "attached_count cache {} but {reachable} attached members exist",
                self.attached_total
            ));
        }
        let deepest = self
            .depth_index
            .iter()
            .rposition(|layer| !layer.is_empty())
            .unwrap_or(0);
        if self.deepest != deepest {
            return fail(format!(
                "max_depth cache {} but deepest non-empty layer is {deepest}",
                self.deepest
            ));
        }
        for layer in &self.depth_index {
            if !layer.windows(2).all(|w| w[0].0 < w[1].0) {
                return fail("depth-index layer is not id-sorted".into());
            }
        }

        // Eviction/free-slot index agreement: every layer member appears
        // in both ordered eviction sets under its documented keys, the
        // free-slot map holds exactly the members with spare capacity,
        // and the totals rule out stale extras.
        let mut free_expected = 0usize;
        for (depth, layer) in self.depth_index.iter().enumerate() {
            let Some(evict) = self.evict_index.get(depth) else {
                return fail(format!("no eviction index layer at depth {depth}"));
            };
            let Some(free) = self.free_index.get(depth) else {
                return fail(format!("no free-slot index layer at depth {depth}"));
            };
            for &(id, ix) in layer {
                let slot = self.s(ix);
                if !evict
                    .by_bandwidth
                    .contains(&(bw_order_key(slot.profile.bandwidth), id))
                {
                    return fail(format!("{id} missing from bandwidth index at {depth}"));
                }
                if !evict
                    .by_join
                    .contains(&(join_order_key(slot.profile.join_time), id))
                {
                    return fail(format!("{id} missing from join-time index at {depth}"));
                }
                let has_free = slot.capacity > slot.children.len();
                if has_free {
                    free_expected += 1;
                }
                if free.get(&id).copied() != has_free.then_some(ix) {
                    return fail(format!("{id} free-slot index entry wrong at {depth}"));
                }
            }
        }
        let evict_bw_total: usize = self.evict_index.iter().map(|l| l.by_bandwidth.len()).sum();
        let evict_join_total: usize = self.evict_index.iter().map(|l| l.by_join.len()).sum();
        if evict_bw_total != reachable || evict_join_total != reachable {
            return fail(format!(
                "eviction index holds {evict_bw_total}/{evict_join_total} entries but \
                 {reachable} attached members exist"
            ));
        }
        let free_total: usize = self.free_index.iter().map(BTreeMap::len).sum();
        if free_total != free_expected {
            return fail(format!(
                "free-slot index holds {free_total} entries but {free_expected} attached \
                 members have spare capacity"
            ));
        }

        // Attached members are exactly those reachable from the root
        // (also proves acyclicity of the attached part).
        let mut seen = 0usize;
        let mut frontier = vec![self.root_ix];
        let mut visited = BTreeSet::new();
        while let Some(n) = frontier.pop() {
            if !visited.insert(n) {
                return fail(format!("cycle through {}", self.s(n).id));
            }
            seen += 1;
            frontier.extend(self.s(n).children.iter().copied());
        }
        if seen != reachable {
            return fail(format!(
                "{seen} members reachable from root but {reachable} marked attached"
            ));
        }

        // Orphan roots really are detached roots.
        for &o in &self.orphan_roots {
            match self.index_of(o) {
                Some(ix) => {
                    let s = self.s(ix);
                    if s.parent != NodeIndex::NIL || s.attached {
                        return fail(format!("{o} is not a valid orphan root"));
                    }
                }
                None => return fail(format!("{o} is not a valid orphan root")),
            }
        }

        // Freed slots carry no live state. (Direct slot access: free-list
        // entries intentionally carry stale generation stamps, so they
        // must not go through the checked `s()` accessor.)
        for &f in &self.free {
            let s = &self.slots[f.index()];
            if s.attached || !s.children.is_empty() || self.index_of(s.id) == Some(f) {
                return fail(format!("freed slot {} still holds live state", f.index()));
            }
        }
        Ok(())
    }
}

/// Convenience constructor for the paper's source node: bandwidth 100
/// ("resembling the capability of a powerful source server", §5),
/// effectively infinite lifetime, id [`NodeId::SOURCE`].
#[must_use]
pub fn paper_source(location: crate::id::Location) -> MemberProfile {
    MemberProfile::new(NodeId::SOURCE, 100.0, SimTime::ZERO, 1e12, location)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Location;

    fn profile(id: u64, bw: f64) -> MemberProfile {
        MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
    }

    /// Pins the audited arena slot size (see the `TreeSlot` doc). Debug
    /// builds carry two extra generation counters (slot + parent index),
    /// so the release budget is only asserted without debug assertions.
    #[test]
    fn tree_slot_size_stays_audited() {
        let size = std::mem::size_of::<TreeSlot>();
        #[cfg(not(debug_assertions))]
        assert!(
            size <= 96,
            "TreeSlot grew to {size} bytes; re-audit the layout comment"
        );
        #[cfg(debug_assertions)]
        assert!(
            size <= 112,
            "TreeSlot (debug) grew to {size} bytes; re-audit the layout comment"
        );
    }

    fn tree_with_capacity(root_bw: f64) -> MulticastTree {
        MulticastTree::new(profile(0, root_bw), 1.0)
    }

    fn children_of(t: &MulticastTree, id: u64) -> Vec<NodeId> {
        t.children(NodeId(id)).collect()
    }

    #[test]
    fn new_tree_has_only_root() {
        let t = tree_with_capacity(100.0);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.attached_count(), 1);
        assert_eq!(t.depth(NodeId(0)), Some(0));
        assert_eq!(t.capacity(NodeId(0)), 100);
        t.check_invariants().unwrap();
    }

    #[test]
    fn attach_builds_layers() {
        let mut t = tree_with_capacity(2.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(2, 1.0), NodeId(0)).unwrap();
        t.attach(profile(3, 0.5), NodeId(1)).unwrap();
        assert_eq!(t.depth(NodeId(3)), Some(2));
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.layer(1).collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(children_of(&t, 1), vec![NodeId(3)]);
        assert_eq!(
            t.overlay_path(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn attach_errors() {
        let mut t = tree_with_capacity(1.0);
        t.attach(profile(1, 0.5), NodeId(0)).unwrap();
        // Root is now full.
        assert_eq!(
            t.attach(profile(2, 1.0), NodeId(0)),
            Err(TreeError::ParentFull(NodeId(0)))
        );
        // Free-rider (capacity 0) cannot accept children.
        assert_eq!(
            t.attach(profile(3, 1.0), NodeId(1)),
            Err(TreeError::ParentFull(NodeId(1)))
        );
        assert_eq!(
            t.attach(profile(1, 1.0), NodeId(0)),
            Err(TreeError::DuplicateMember(NodeId(1)))
        );
        assert_eq!(
            t.attach(profile(4, 1.0), NodeId(99)),
            Err(TreeError::UnknownMember(NodeId(99)))
        );
    }

    #[test]
    fn set_bandwidth_recomputes_capacity_and_sheds_excess_children() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 1.0), NodeId(1)).unwrap();
        t.attach(profile(3, 1.0), NodeId(1)).unwrap();
        t.attach(profile(4, 1.0), NodeId(1)).unwrap();
        t.attach(profile(5, 1.0), NodeId(3)).unwrap();

        // Shrinking within budget sheds nobody.
        assert_eq!(t.set_bandwidth(NodeId(1), 3.5).unwrap(), vec![]);
        assert_eq!(t.capacity(NodeId(1)), 3);

        // Dropping to one slot sheds the most recently adopted children,
        // subtrees included, into orphan state.
        let shed = t.set_bandwidth(NodeId(1), 1.2).unwrap();
        assert_eq!(shed, vec![NodeId(4), NodeId(3)]);
        assert_eq!(t.capacity(NodeId(1)), 1);
        assert_eq!(children_of(&t, 1), vec![NodeId(2)]);
        assert!(!t.is_attached(NodeId(3)));
        assert!(!t.is_attached(NodeId(5)));
        assert_eq!(
            t.orphan_roots().collect::<Vec<_>>(),
            vec![NodeId(3), NodeId(4)]
        );
        t.check_invariants().unwrap();

        // The orphans recover through the normal reattach path.
        t.reattach(NodeId(3), NodeId(0)).unwrap();
        t.reattach(NodeId(4), NodeId(0)).unwrap();
        t.check_invariants().unwrap();

        assert_eq!(
            t.set_bandwidth(NodeId(77), 1.0),
            Err(TreeError::UnknownMember(NodeId(77)))
        );
    }

    #[test]
    fn remove_orphans_children_and_reports_descendants() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(1)).unwrap();
        t.attach(profile(4, 1.0), NodeId(2)).unwrap();

        let removed = t.remove(NodeId(1)).unwrap();
        assert_eq!(removed.profile.id, NodeId(1));
        assert_eq!(removed.orphaned_children, vec![NodeId(2), NodeId(3)]);
        let mut affected = removed.affected_descendants.clone();
        affected.sort();
        assert_eq!(affected, vec![NodeId(2), NodeId(3), NodeId(4)]);

        assert!(!t.contains(NodeId(1)));
        assert!(!t.is_attached(NodeId(2)));
        assert!(!t.is_attached(NodeId(4)));
        assert_eq!(t.depth(NodeId(4)), None);
        assert_eq!(
            t.orphan_roots().collect::<Vec<_>>(),
            vec![NodeId(2), NodeId(3)]
        );
        assert_eq!(t.attached_count(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn reattach_restores_subtree() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 1.0), NodeId(2)).unwrap();
        t.remove(NodeId(1)).unwrap();

        t.reattach(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(t.depth(NodeId(2)), Some(1));
        assert_eq!(t.depth(NodeId(3)), Some(2));
        assert!(t.orphan_roots().next().is_none());
        assert_eq!(t.attached_count(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn reattach_rejects_cycles_and_non_orphans() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(2)).unwrap();
        t.remove(NodeId(1)).unwrap(); // orphan root: 2 (with child 3)

        assert_eq!(
            t.reattach(NodeId(3), NodeId(0)),
            Err(TreeError::NotAnOrphan(NodeId(3)))
        );
        assert_eq!(
            t.reattach(NodeId(2), NodeId(3)),
            Err(TreeError::WouldCycle(NodeId(3)))
        );
        assert_eq!(
            t.reattach(NodeId(2), NodeId(2)),
            Err(TreeError::WouldCycle(NodeId(2)))
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn cannot_remove_root() {
        let mut t = tree_with_capacity(1.0);
        assert_eq!(t.remove(NodeId(0)), Err(TreeError::RootImmovable));
    }

    #[test]
    fn replace_adopts_children_and_displaces_overflow() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 1.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(1)).unwrap();
        t.attach(profile(4, 0.5), NodeId(1)).unwrap();

        // Newcomer with capacity 2 replaces node 1 (3 children): keeps the
        // two highest-bandwidth children, displaces the rest.
        let outcome = t
            .replace(NodeId(1), profile(5, 2.5), |p| p.bandwidth)
            .unwrap();
        assert_eq!(outcome.adopted, vec![NodeId(3), NodeId(2)]);
        assert_eq!(outcome.displaced, vec![NodeId(1), NodeId(4)]);

        assert_eq!(t.parent(NodeId(5)), Some(NodeId(0)));
        assert_eq!(t.depth(NodeId(5)), Some(1));
        assert_eq!(t.depth(NodeId(3)), Some(2));
        assert!(!t.is_attached(NodeId(1)));
        assert!(!t.is_attached(NodeId(4)));
        assert_eq!(
            t.orphan_roots().collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(4)]
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn replace_guards() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        assert_eq!(
            t.replace(NodeId(0), profile(5, 2.0), |p| p.bandwidth),
            Err(TreeError::RootImmovable)
        );
        assert_eq!(
            t.replace(NodeId(1), profile(1, 2.0), |p| p.bandwidth),
            Err(TreeError::DuplicateMember(NodeId(1)))
        );
        assert_eq!(
            t.replace(NodeId(9), profile(5, 2.0), |p| p.bandwidth),
            Err(TreeError::UnknownMember(NodeId(9)))
        );
    }

    /// Reconstructs the paper's Fig. 2 switching example.
    #[test]
    fn swap_matches_paper_figure_2() {
        // g (root, large capacity)
        //   a (capacity 2): children b, c
        //     b (capacity 3): children d, e, f
        // BTPs are proxied by bandwidth here: b=12 > a=10, f largest of
        // d/e/f.
        let mut t = tree_with_capacity(10.0); // g = node 0
        let a = profile(1, 2.0);
        let b = profile(2, 3.0);
        let c = profile(3, 0.5);
        let d = profile(4, 0.3);
        let e = profile(5, 0.4);
        let f = profile(6, 0.5);
        t.attach(a, NodeId(0)).unwrap();
        t.attach(b, NodeId(1)).unwrap();
        t.attach(c, NodeId(1)).unwrap();
        t.attach(d, NodeId(2)).unwrap();
        t.attach(e, NodeId(2)).unwrap();
        t.attach(f, NodeId(2)).unwrap();

        let record = t.swap_with_parent(NodeId(2), |p| p.bandwidth).unwrap();
        assert_eq!(record.promoted, NodeId(2));
        assert_eq!(record.demoted, NodeId(1));
        // b is now the child of g; a is b's child; c follows b; f (largest
        // priority among d,e,f) spills to b; d,e stay with a.
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(6)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(1)));
        assert_eq!(record.spilled_to_promoted, vec![NodeId(6)]);
        assert!(record.displaced.is_empty());
        // Parent changes: b, a, c, d, e — five pointers (2d+1 with d=2).
        assert_eq!(record.parent_changes, 5);
        // Depths updated.
        assert_eq!(t.depth(NodeId(2)), Some(1));
        assert_eq!(t.depth(NodeId(1)), Some(2));
        assert_eq!(t.depth(NodeId(4)), Some(3));
        assert_eq!(t.depth(NodeId(6)), Some(2));
        t.check_invariants().unwrap();
    }

    #[test]
    fn swap_guards() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 3.0), NodeId(1)).unwrap();
        // Child of root cannot switch above the root.
        assert_eq!(
            t.swap_with_parent(NodeId(1), |p| p.bandwidth),
            Err(TreeError::NoSwitchableParent(NodeId(1)))
        );
        assert_eq!(
            t.swap_with_parent(NodeId(0), |p| p.bandwidth),
            Err(TreeError::RootImmovable)
        );
        assert_eq!(
            t.swap_with_parent(NodeId(9), |p| p.bandwidth),
            Err(TreeError::UnknownMember(NodeId(9)))
        );
        // Orphans cannot switch.
        t.remove(NodeId(1)).unwrap();
        assert_eq!(
            t.swap_with_parent(NodeId(2), |p| p.bandwidth),
            Err(TreeError::NoSwitchableParent(NodeId(2)))
        );
    }

    #[test]
    fn swap_preserves_membership_and_capacity() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(2, 5.0), NodeId(1)).unwrap();
        for i in 3..8 {
            t.attach(profile(i, 0.5), NodeId(2)).unwrap();
        }
        let before = t.len();
        let record = t.swap_with_parent(NodeId(2), |p| p.bandwidth).unwrap();
        assert_eq!(t.len(), before);
        t.check_invariants().unwrap();
        // Demoted parent (capacity 2) keeps 2, the rest spill to node 2
        // (capacity 5, 2 slots used by node 1 + nothing else → 3 spare).
        assert_eq!(t.child_count(NodeId(1)), 2);
        assert_eq!(record.spilled_to_promoted.len(), 3);
        assert!(record.displaced.is_empty());
    }

    #[test]
    fn ancestors_and_descendants() {
        let mut t = tree_with_capacity(5.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(2)).unwrap();
        assert_eq!(
            t.ancestors(NodeId(3)),
            vec![NodeId(2), NodeId(1), NodeId(0)]
        );
        assert_eq!(
            t.ancestors_iter(NodeId(3)).collect::<Vec<_>>(),
            t.ancestors(NodeId(3))
        );
        assert!(t.is_ancestor(NodeId(0), NodeId(3)));
        assert!(t.is_ancestor(NodeId(1), NodeId(3)));
        assert!(!t.is_ancestor(NodeId(3), NodeId(1)));
        let mut desc = t.descendants(NodeId(1));
        desc.sort();
        assert_eq!(desc, vec![NodeId(2), NodeId(3)]);
        assert_eq!(t.subtree_size(NodeId(1)), 3);
        assert_eq!(t.subtree_size(NodeId(99)), 0);
    }

    #[test]
    fn attached_by_depth_is_breadth_first() {
        let mut t = tree_with_capacity(5.0);
        t.attach(profile(2, 2.0), NodeId(0)).unwrap();
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(3, 2.0), NodeId(2)).unwrap();
        let order: Vec<NodeId> = t.attached_by_depth().collect();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn mean_internal_out_degree() {
        let mut t = tree_with_capacity(5.0);
        assert_eq!(t.mean_internal_out_degree(), 0.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(0)).unwrap();
        t.attach(profile(3, 2.0), NodeId(1)).unwrap();
        // Root has 2 children, node 1 has 1 → mean 1.5.
        assert_eq!(t.mean_internal_out_degree(), 1.5);
    }

    #[test]
    fn usurp_rejoins_orphan_at_evicted_position() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 1.0), NodeId(2)).unwrap();
        t.attach(profile(4, 0.5), NodeId(0)).unwrap();
        // Orphan node 2 (with child 3) by removing node 1.
        t.remove(NodeId(1)).unwrap();
        assert!(t.orphan_roots().any(|o| o == NodeId(2)));

        // Node 2 usurps node 4's position at depth 1.
        let outcome = t.usurp(NodeId(4), NodeId(2), |p| p.bandwidth).unwrap();
        assert_eq!(outcome.displaced, vec![NodeId(4)]);
        assert!(outcome.adopted.is_empty());
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(0)));
        assert_eq!(t.depth(NodeId(2)), Some(1));
        assert_eq!(t.depth(NodeId(3)), Some(2));
        assert!(!t.is_attached(NodeId(4)));
        assert_eq!(t.orphan_roots().collect::<Vec<_>>(), vec![NodeId(4)]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn usurp_adopts_into_spare_capacity_only() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap(); // capacity 2
        t.attach(profile(2, 3.0), NodeId(0)).unwrap();
        t.attach(profile(3, 1.5), NodeId(2)).unwrap();
        t.attach(profile(4, 0.5), NodeId(2)).unwrap();
        t.attach(profile(5, 0.4), NodeId(1)).unwrap(); // node 1 has 1 child
                                                       // Orphan node 1 (child 5 still under it).
        t.remove_parent_link_for_test(NodeId(1));

        // Node 1 (capacity 2, one child) usurps node 2 (two children):
        // one adopted (highest bw = node 3), one displaced (node 4).
        let outcome = t.usurp(NodeId(2), NodeId(1), |p| p.bandwidth).unwrap();
        assert_eq!(outcome.adopted, vec![NodeId(3)]);
        assert_eq!(outcome.displaced, vec![NodeId(2), NodeId(4)]);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.depth(NodeId(5)), Some(2));
        t.check_invariants().unwrap();
    }

    #[test]
    fn usurp_guards() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(0)).unwrap();
        // Node 1 is attached, not an orphan.
        assert_eq!(
            t.usurp(NodeId(2), NodeId(1), |p| p.bandwidth),
            Err(TreeError::NotAnOrphan(NodeId(1)))
        );
        t.remove_parent_link_for_test(NodeId(1));
        assert_eq!(
            t.usurp(NodeId(0), NodeId(1), |p| p.bandwidth),
            Err(TreeError::RootImmovable)
        );
        assert_eq!(
            t.usurp(NodeId(42), NodeId(1), |p| p.bandwidth),
            Err(TreeError::UnknownMember(NodeId(42)))
        );
    }

    #[test]
    fn paper_source_has_capacity_100() {
        let src = paper_source(Location(0));
        assert_eq!(src.out_capacity(1.0), 100);
        assert_eq!(src.id, NodeId::SOURCE);
    }

    // --- arena-specific behaviour ---

    #[test]
    fn slot_reuse_after_remove() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 2.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(0)).unwrap();
        let freed = t.index_of(NodeId(1)).unwrap();
        t.remove(NodeId(1)).unwrap();
        assert_eq!(t.index_of(NodeId(1)), None);
        // The next insert recycles the freed slot; the re-interned index
        // points at the same raw slot (the old stamp is dead — using
        // `freed` itself would trip the debug generation check).
        t.attach(profile(3, 2.0), NodeId(0)).unwrap();
        let reused = t.index_of(NodeId(3)).unwrap();
        assert_eq!(reused.index(), freed.index());
        assert_eq!(t.id_of(reused), NodeId(3));
        assert_eq!(t.len(), 3);
        t.check_invariants().unwrap();
    }

    #[test]
    fn index_accessors_agree_with_id_accessors() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 1.0), NodeId(1)).unwrap();
        for (id, ix) in t.member_entries() {
            assert_eq!(t.id_of(ix), id);
            assert_eq!(t.index_of(id), Some(ix));
            assert_eq!(t.depth_ix(ix), t.depth(id));
            assert_eq!(t.capacity_ix(ix), t.capacity(id));
            assert_eq!(t.free_slots_ix(ix), t.free_slots(id));
            assert_eq!(t.child_count_ix(ix), t.child_count(id));
            assert_eq!(t.is_attached_ix(ix), t.is_attached(id));
            assert_eq!(t.profile_ix(ix).id, id);
            assert_eq!(
                t.parent_ix(ix).map(|p| t.id_of(p)),
                t.parent(id)
            );
            let via_ix: Vec<NodeId> = t.children_ix(ix).iter().map(|&c| t.id_of(c)).collect();
            assert_eq!(via_ix, t.children(id).collect::<Vec<_>>());
        }
        for depth in 0..=t.max_depth() {
            let entries: Vec<_> = t.layer_entries(depth).collect();
            assert_eq!(
                entries.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                t.layer(depth).collect::<Vec<_>>()
            );
            for (id, ix) in entries {
                assert_eq!(t.index_of(id), Some(ix));
            }
        }
    }

    #[test]
    fn cached_counters_match_recomputation() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(2)).unwrap();
        t.remove(NodeId(1)).unwrap();
        assert_eq!(t.attached_count(), t.attached_by_depth().count());
        // Deepest attached member is the root again → max_depth falls to 0.
        assert_eq!(t.max_depth(), 0);
        t.reattach(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(t.attached_count(), t.attached_by_depth().count());
        assert_eq!(t.max_depth(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn lca_depth_matches_path_intersection() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(1)).unwrap();
        t.attach(profile(4, 1.0), NodeId(2)).unwrap();
        // Path 0-1-2-4 vs 0-1-3: LCA is node 1 at depth 1.
        assert_eq!(t.lca_depth(NodeId(4), NodeId(3)), Some(1));
        assert_eq!(t.lca_depth(NodeId(3), NodeId(4)), Some(1));
        // Ancestor pair: LCA is the ancestor itself.
        assert_eq!(t.lca_depth(NodeId(1), NodeId(4)), Some(1));
        // Same node: its own depth.
        assert_eq!(t.lca_depth(NodeId(4), NodeId(4)), Some(3));
        // Detached or unknown members have no correlation level.
        t.remove_parent_link_for_test(NodeId(2));
        assert_eq!(t.lca_depth(NodeId(4), NodeId(3)), None);
        assert_eq!(t.lca_depth(NodeId(99), NodeId(3)), None);
    }

    #[test]
    fn descendants_into_appends_in_walk_order() {
        let mut t = tree_with_capacity(10.0);
        t.attach(profile(1, 3.0), NodeId(0)).unwrap();
        t.attach(profile(2, 2.0), NodeId(1)).unwrap();
        t.attach(profile(3, 2.0), NodeId(1)).unwrap();
        t.attach(profile(4, 1.0), NodeId(2)).unwrap();
        let direct = t.descendants(NodeId(1));
        let mut buf = vec![NodeId(77)];
        t.descendants_into(NodeId(1), &mut buf);
        assert_eq!(buf[0], NodeId(77));
        assert_eq!(&buf[1..], &direct[..]);
    }
}
