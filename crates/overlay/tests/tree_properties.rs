//! Property-based tests: the multicast tree's structural invariants
//! survive arbitrary interleavings of every mutation the protocols
//! perform.

use proptest::prelude::*;
use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId, TreeError};
use rom_sim::SimTime;

/// One randomized mutation, to be resolved against the current tree state.
#[derive(Debug, Clone)]
enum Op {
    /// Attach a fresh member (bandwidth chosen from the value) under the
    /// k-th attached member with a free slot.
    Attach { bw_tenths: u8, pick: u16 },
    /// Remove the k-th non-root member.
    Remove { pick: u16 },
    /// Reattach the k-th orphan root under the j-th attached member with a
    /// free slot.
    Reattach { pick: u16, parent_pick: u16 },
    /// Swap the k-th attached member with its parent.
    Swap { pick: u16 },
    /// A fresh member replaces the k-th attached non-root member.
    Replace { bw_tenths: u8, pick: u16 },
    /// The k-th orphan root usurps the j-th attached non-root member.
    Usurp { pick: u16, evict_pick: u16 },
    /// Re-key the k-th member (root included) to a new bandwidth,
    /// shedding children past the recomputed capacity.
    SetBandwidth { bw_tenths: u8, pick: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>()).prop_map(|(bw_tenths, pick)| Op::Attach { bw_tenths, pick }),
        2 => any::<u16>().prop_map(|pick| Op::Remove { pick }),
        2 => (any::<u16>(), any::<u16>()).prop_map(|(pick, parent_pick)| Op::Reattach { pick, parent_pick }),
        2 => any::<u16>().prop_map(|pick| Op::Swap { pick }),
        1 => (any::<u8>(), any::<u16>()).prop_map(|(bw_tenths, pick)| Op::Replace { bw_tenths, pick }),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(pick, evict_pick)| Op::Usurp { pick, evict_pick }),
        2 => (any::<u8>(), any::<u16>()).prop_map(|(bw_tenths, pick)| Op::SetBandwidth { bw_tenths, pick }),
    ]
}

fn apply_set_bandwidth(tree: &mut MulticastTree, bw_tenths: u8, pick: u16) {
    let mut members: Vec<NodeId> = tree.member_ids().collect();
    members.sort();
    if let Some(m) = pick_from(&members, pick) {
        tree.set_bandwidth(m, f64::from(bw_tenths) / 10.0).unwrap();
    }
}

fn pick_from(items: &[NodeId], pick: u16) -> Option<NodeId> {
    if items.is_empty() {
        None
    } else {
        Some(items[pick as usize % items.len()])
    }
}

fn attached_with_free_slot(tree: &MulticastTree) -> Vec<NodeId> {
    tree.attached_by_depth()
        .filter(|&n| tree.has_free_slot(n))
        .collect()
}

fn attached_non_root(tree: &MulticastTree) -> Vec<NodeId> {
    tree.attached_by_depth()
        .filter(|&n| n != tree.root())
        .collect()
}

fn profile(id: u64, bw: f64) -> MemberProfile {
    MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after every single mutation in a random sequence.
    #[test]
    fn invariants_survive_random_mutation_sequences(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut tree = MulticastTree::new(profile(0, 4.0), 1.0);
        let mut next_id = 1u64;
        for op in ops {
            match op {
                Op::Attach { bw_tenths, pick } => {
                    let parents = attached_with_free_slot(&tree);
                    if let Some(parent) = pick_from(&parents, pick) {
                        let bw = f64::from(bw_tenths) / 10.0; // 0.0 ..= 25.5
                        tree.attach(profile(next_id, bw), parent).unwrap();
                        next_id += 1;
                    }
                }
                Op::Remove { pick } => {
                    let victims: Vec<NodeId> =
                        tree.member_ids().filter(|&n| n != tree.root()).collect();
                    let mut victims = victims;
                    victims.sort();
                    if let Some(v) = pick_from(&victims, pick) {
                        tree.remove(v).unwrap();
                    }
                }
                Op::Reattach { pick, parent_pick } => {
                    let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                    let parents = attached_with_free_slot(&tree);
                    if let (Some(o), Some(p)) = (pick_from(&orphans, pick), pick_from(&parents, parent_pick)) {
                        tree.reattach(o, p).unwrap();
                    }
                }
                Op::Swap { pick } => {
                    let nodes = attached_non_root(&tree);
                    if let Some(n) = pick_from(&nodes, pick) {
                        match tree.swap_with_parent(n, |p| p.bandwidth) {
                            Ok(_)
                            | Err(TreeError::NoSwitchableParent(_))
                            | Err(TreeError::InsufficientCapacity(_)) => {}
                            Err(e) => panic!("unexpected swap error: {e}"),
                        }
                    }
                }
                Op::Replace { bw_tenths, pick } => {
                    let targets = attached_non_root(&tree);
                    if let Some(t) = pick_from(&targets, pick) {
                        let bw = f64::from(bw_tenths) / 10.0;
                        tree.replace(t, profile(next_id, bw), |p| p.bandwidth).unwrap();
                        next_id += 1;
                    }
                }
                Op::Usurp { pick, evict_pick } => {
                    let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                    let targets = attached_non_root(&tree);
                    if let (Some(o), Some(t)) = (pick_from(&orphans, pick), pick_from(&targets, evict_pick)) {
                        tree.usurp(t, o, |p| p.bandwidth).unwrap();
                    }
                }
                Op::SetBandwidth { bw_tenths, pick } => {
                    apply_set_bandwidth(&mut tree, bw_tenths, pick);
                }
            }
            if let Err(v) = tree.check_invariants() {
                panic!("after {:?}: {v}", tree.member_ids().count());
            }
        }
    }

    /// Membership conservation: mutations never lose or duplicate members
    /// except through explicit removal.
    #[test]
    fn membership_is_conserved(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut tree = MulticastTree::new(profile(0, 4.0), 1.0);
        let mut next_id = 1u64;
        let mut expected: std::collections::BTreeSet<u64> = [0].into_iter().collect();
        for op in ops {
            match op {
                Op::Attach { bw_tenths, pick } => {
                    let parents = attached_with_free_slot(&tree);
                    if let Some(parent) = pick_from(&parents, pick) {
                        tree.attach(profile(next_id, f64::from(bw_tenths) / 10.0), parent).unwrap();
                        expected.insert(next_id);
                        next_id += 1;
                    }
                }
                Op::Remove { pick } => {
                    let mut victims: Vec<NodeId> =
                        tree.member_ids().filter(|&n| n != tree.root()).collect();
                    victims.sort();
                    if let Some(v) = pick_from(&victims, pick) {
                        tree.remove(v).unwrap();
                        expected.remove(&v.0);
                    }
                }
                Op::Swap { pick } => {
                    let nodes = attached_non_root(&tree);
                    if let Some(n) = pick_from(&nodes, pick) {
                        let _ = tree.swap_with_parent(n, |p| p.bandwidth);
                    }
                }
                _ => {}
            }
            let actual: std::collections::BTreeSet<u64> =
                tree.member_ids().map(|n| n.0).collect();
            prop_assert_eq!(&actual, &expected);
        }
    }

    /// The O(1) cached counters (`attached_count`, `max_depth`) always
    /// match a from-scratch recomputation over the membership, no matter
    /// how mutations interleave. Guards the PR-5 arena bookkeeping: the
    /// pre-arena `attached_count` re-summed every depth layer per call, so
    /// a stale increment here would silently skew every report that reads
    /// the population size.
    #[test]
    fn cached_counters_match_recomputation(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut tree = MulticastTree::new(profile(0, 4.0), 1.0);
        let mut next_id = 1u64;
        for op in ops {
            match op {
                Op::Attach { bw_tenths, pick } => {
                    let parents = attached_with_free_slot(&tree);
                    if let Some(parent) = pick_from(&parents, pick) {
                        tree.attach(profile(next_id, f64::from(bw_tenths) / 10.0), parent).unwrap();
                        next_id += 1;
                    }
                }
                Op::Remove { pick } => {
                    let mut victims: Vec<NodeId> =
                        tree.member_ids().filter(|&n| n != tree.root()).collect();
                    victims.sort();
                    if let Some(v) = pick_from(&victims, pick) {
                        tree.remove(v).unwrap();
                    }
                }
                Op::Reattach { pick, parent_pick } => {
                    let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                    let parents = attached_with_free_slot(&tree);
                    if let (Some(o), Some(p)) = (pick_from(&orphans, pick), pick_from(&parents, parent_pick)) {
                        tree.reattach(o, p).unwrap();
                    }
                }
                Op::Swap { pick } => {
                    let nodes = attached_non_root(&tree);
                    if let Some(n) = pick_from(&nodes, pick) {
                        let _ = tree.swap_with_parent(n, |p| p.bandwidth);
                    }
                }
                Op::Replace { bw_tenths, pick } => {
                    let targets = attached_non_root(&tree);
                    if let Some(t) = pick_from(&targets, pick) {
                        tree.replace(t, profile(next_id, f64::from(bw_tenths) / 10.0), |p| p.bandwidth).unwrap();
                        next_id += 1;
                    }
                }
                Op::Usurp { pick, evict_pick } => {
                    let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                    let targets = attached_non_root(&tree);
                    if let (Some(o), Some(t)) = (pick_from(&orphans, pick), pick_from(&targets, evict_pick)) {
                        tree.usurp(t, o, |p| p.bandwidth).unwrap();
                    }
                }
                Op::SetBandwidth { bw_tenths, pick } => {
                    apply_set_bandwidth(&mut tree, bw_tenths, pick);
                }
            }
            let recomputed_attached = tree
                .member_ids()
                .filter(|&n| tree.is_attached(n))
                .count();
            prop_assert_eq!(tree.attached_count(), recomputed_attached);
            let recomputed_max_depth = tree
                .member_ids()
                .filter_map(|n| tree.depth(n))
                .max()
                .unwrap_or(0);
            prop_assert_eq!(tree.max_depth(), recomputed_max_depth);
        }
    }

    /// Depths reported by the index always match the distance to the root
    /// along parent pointers.
    #[test]
    fn depth_equals_ancestor_count(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut tree = MulticastTree::new(profile(0, 4.0), 1.0);
        let mut next_id = 1u64;
        for op in ops {
            if let Op::Attach { bw_tenths, pick } = op {
                let parents = attached_with_free_slot(&tree);
                if let Some(parent) = pick_from(&parents, pick) {
                    tree.attach(profile(next_id, f64::from(bw_tenths) / 10.0), parent).unwrap();
                    next_id += 1;
                }
            } else if let Op::Swap { pick } = op {
                let nodes = attached_non_root(&tree);
                if let Some(n) = pick_from(&nodes, pick) {
                    let _ = tree.swap_with_parent(n, |p| p.bandwidth);
                }
            }
            for id in tree.attached_by_depth() {
                let depth = tree.depth(id).unwrap();
                prop_assert_eq!(depth, tree.ancestors(id).len());
            }
        }
    }

    /// The ordered eviction index and the free-slot index answer exactly
    /// what an exhaustive layer scan answers, no matter how mutations
    /// interleave — including `set_bandwidth` re-keying and slot reuse
    /// after removals (`check_invariants`, run every step, additionally
    /// proves index membership equals the attached set per depth).
    /// Join times span negative, zero, and positive seconds so the age
    /// probe's sign handling, clamp-at-zero ties, and id tie-breaks are
    /// all exercised at both probe times.
    #[test]
    fn eviction_probes_match_exhaustive_scans(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut tree = MulticastTree::new(profile(0, 4.0), 1.0);
        let mut next_id = 1u64;
        for op in ops {
            match op {
                Op::Attach { bw_tenths, pick } => {
                    let parents = attached_with_free_slot(&tree);
                    if let Some(parent) = pick_from(&parents, pick) {
                        let join_secs = (next_id % 13) as f64 - 6.0;
                        let m = MemberProfile::new(
                            NodeId(next_id),
                            f64::from(bw_tenths) / 10.0,
                            SimTime::from_secs(join_secs),
                            1e6,
                            Location(next_id as u32),
                        );
                        tree.attach(m, parent).unwrap();
                        next_id += 1;
                    }
                }
                Op::Remove { pick } => {
                    let mut victims: Vec<NodeId> =
                        tree.member_ids().filter(|&n| n != tree.root()).collect();
                    victims.sort();
                    if let Some(v) = pick_from(&victims, pick) {
                        tree.remove(v).unwrap();
                    }
                }
                Op::Reattach { pick, parent_pick } => {
                    let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                    let parents = attached_with_free_slot(&tree);
                    if let (Some(o), Some(p)) = (pick_from(&orphans, pick), pick_from(&parents, parent_pick)) {
                        tree.reattach(o, p).unwrap();
                    }
                }
                Op::Swap { pick } => {
                    let nodes = attached_non_root(&tree);
                    if let Some(n) = pick_from(&nodes, pick) {
                        let _ = tree.swap_with_parent(n, |p| p.bandwidth);
                    }
                }
                Op::Replace { bw_tenths, pick } => {
                    let targets = attached_non_root(&tree);
                    if let Some(t) = pick_from(&targets, pick) {
                        tree.replace(t, profile(next_id, f64::from(bw_tenths) / 10.0), |p| p.bandwidth).unwrap();
                        next_id += 1;
                    }
                }
                Op::Usurp { pick, evict_pick } => {
                    let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                    let targets = attached_non_root(&tree);
                    if let (Some(o), Some(t)) = (pick_from(&orphans, pick), pick_from(&targets, evict_pick)) {
                        tree.usurp(t, o, |p| p.bandwidth).unwrap();
                    }
                }
                Op::SetBandwidth { bw_tenths, pick } => {
                    apply_set_bandwidth(&mut tree, bw_tenths, pick);
                }
            }
            tree.check_invariants().unwrap();
            for now in [SimTime::from_secs(0.5), SimTime::from_secs(8.0)] {
                for depth in 0..=tree.max_depth() {
                    prop_assert_eq!(
                        tree.weakest_by_bandwidth(depth),
                        scan_weakest(&tree, depth, |p| p.bandwidth),
                        "bandwidth probe at depth {}", depth
                    );
                    prop_assert_eq!(
                        tree.weakest_by_age(depth, now),
                        scan_weakest(&tree, depth, |p| p.age(now)),
                        "age probe at depth {} now {:?}", depth, now
                    );
                }
            }
            let scan_free_depth = (0..=tree.max_depth())
                .find(|&d| tree.layer(d).any(|id| tree.has_free_slot(id)));
            prop_assert_eq!(tree.shallowest_free_depth(), scan_free_depth);
            for depth in 0..=tree.max_depth() {
                let indexed: Vec<NodeId> = tree.free_slot_entries(depth).map(|(id, _)| id).collect();
                let scanned: Vec<NodeId> =
                    tree.layer(depth).filter(|&id| tree.has_free_slot(id)).collect();
                prop_assert_eq!(indexed, scanned, "free-slot entries at depth {}", depth);
            }
        }
    }
}

/// The pre-index eviction search body: an exhaustive scan of one layer
/// for the minimum (key, id), using the same `==`/`<` comparisons the old
/// `find_eviction` used.
fn scan_weakest(
    tree: &MulticastTree,
    depth: usize,
    key: impl Fn(&MemberProfile) -> f64,
) -> Option<(f64, NodeId)> {
    let mut weakest: Option<(f64, NodeId)> = None;
    for (cand, ix) in tree.layer_entries(depth) {
        let k = key(tree.profile_ix(ix));
        let better = match weakest {
            None => true,
            Some((wk, wid)) => k < wk || (k == wk && cand < wid),
        };
        if better {
            weakest = Some((k, cand));
        }
    }
    weakest
}
