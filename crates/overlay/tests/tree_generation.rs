//! Tier-1 regression for the arena's generational debug checking.
//!
//! The slab arena's LIFO free list recycles slots, so a `NodeIndex` held
//! across a `remove` can silently alias a *different* member — the exact
//! hazard rom-lint's R5 `stale-arena-index` hunts statically. This suite
//! pins the dynamic half of that defense: under `debug_assertions`, a
//! resurrected index panics at first use with a diagnostic naming both
//! generations, while the same operation sequence through the public
//! id-based APIs stays silent and correct. Release builds compile the
//! check out entirely (the release half of this file documents the
//! aliasing behaviour the checks exist to catch).

use rom_overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId, NodeIndex};
use rom_sim::SimTime;

fn profile(id: u64, bw: f64) -> MemberProfile {
    MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
}

/// Builds source → 1 → 2, interns node 2's index, removes node 2, then
/// attaches node 3 so the LIFO free list hands node 2's slot to node 3.
/// Returns the tree and the now-stale index.
fn tree_with_resurrected_slot() -> (MulticastTree, NodeIndex) {
    let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    tree.attach(profile(1, 4.0), NodeId(0)).unwrap();
    tree.attach(profile(2, 2.0), NodeId(1)).unwrap();
    let stale = tree.index_of(NodeId(2)).unwrap();
    tree.remove(NodeId(2)).unwrap();
    tree.attach(profile(3, 2.0), NodeId(1)).unwrap();
    let reused = tree.index_of(NodeId(3)).unwrap();
    assert_eq!(
        reused.index(),
        stale.index(),
        "precondition: the free list must recycle node 2's slot for node 3"
    );
    (tree, stale)
}

#[cfg(debug_assertions)]
#[test]
fn resurrected_index_panics_naming_both_generations() {
    let (tree, stale) = tree_with_resurrected_slot();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        tree.profile_ix(stale).id
    }))
    .expect_err("debug build must reject a NodeIndex resurrected through the free list");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    // The diagnostic names the slot's current generation and the stamp
    // the index was minted under, and points at the fix.
    assert!(msg.contains("stale NodeIndex"), "diagnostic: {msg}");
    assert!(msg.contains("generation 1"), "slot generation named: {msg}");
    assert!(
        msg.contains("minted at generation 0"),
        "index generation named: {msg}"
    );
    assert!(msg.contains("re-intern"), "fix suggested: {msg}");
}

#[cfg(not(debug_assertions))]
#[test]
fn resurrected_index_aliases_silently_in_release() {
    // Release builds carry no generation stamps: the stale index reads
    // whichever member currently occupies the slot. This is the quiet
    // corruption the debug check (and lint rule R5) exists to catch —
    // asserted here so a future "optimization" that accidentally ships
    // the check into release shows up as a test failure.
    let (tree, stale) = tree_with_resurrected_slot();
    assert_eq!(tree.profile_ix(stale).id, NodeId(3));
}

#[test]
fn same_sequence_via_public_apis_is_silent_and_correct() {
    // Identical churn, but every access re-interns through the id map —
    // no panic in any build profile, and the tree is fully consistent.
    let (tree, _stale) = tree_with_resurrected_slot();
    assert!(!tree.contains(NodeId(2)), "removed member is gone");
    let ix3 = tree.index_of(NodeId(3)).unwrap();
    assert_eq!(tree.profile_ix(ix3).id, NodeId(3));
    assert_eq!(tree.id_of(ix3), NodeId(3));
    assert_eq!(tree.parent(NodeId(3)), Some(NodeId(1)));
    tree.check_invariants().unwrap();
}
