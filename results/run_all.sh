#!/bin/sh
# Regenerates every figure at reduced scale with 3 seeds.
set -e
cd "$(dirname "$0")/.."
for fig in fig04_disruptions fig05_disruption_cdf fig06_member_disruptions \
           fig07_service_delay fig08_stretch fig09_member_delay \
           fig10_protocol_overhead fig11_switching_interval \
           fig12_starving_vs_size fig13_starving_vs_buffer fig14_rost_cer; do
  echo "== $fig =="
  cargo run --release -p rom-bench --bin "$fig" -- --seeds 3 > "results/$fig.csv" 2>/dev/null
done
echo ALL_FIGURES_DONE
