//! Churn comparison: run all five tree-construction algorithms of the
//! paper on the same workload and print a side-by-side scorecard — a
//! miniature of the paper's Figs. 4, 7, 8 and 10.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example churn_comparison [members] [seed]
//! ```

use rom::engine::{AlgorithmKind, ChurnConfig, ChurnSim};

fn main() {
    let mut args = std::env::args().skip(1);
    let members: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(1_000);
    let seed: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(1);

    println!("== five-way comparison: {members} members, seed {seed} ==\n");
    println!(
        "{:<22} {:>11} {:>11} {:>9} {:>8} {:>10} {:>9} {:>9}",
        "algorithm",
        "disruptions",
        "delay (ms)",
        "stretch",
        "depth",
        "overhead",
        "switches",
        "evictions"
    );

    let mut best: Option<(AlgorithmKind, f64)> = None;
    for algorithm in AlgorithmKind::ALL {
        let mut cfg = ChurnConfig::paper(algorithm, members);
        cfg.seed = seed;
        let report = ChurnSim::new(cfg).run();
        let disruptions = report.disruptions_per_mean_lifetime();
        println!(
            "{:<22} {:>11.3} {:>11.0} {:>9.2} {:>8.1} {:>10.3} {:>9} {:>9}",
            algorithm.name(),
            disruptions,
            report.service_delay_ms.mean(),
            report.stretch.mean(),
            report.depth.mean(),
            report.reconnections_per_lifetime.mean(),
            report.switches,
            report.evictions,
        );
        if best.is_none_or(|(_, b)| disruptions < b) {
            best = Some((algorithm, disruptions));
        }
    }

    let (winner, score) = best.expect("five algorithms ran");
    println!(
        "\nMost fault-resilient tree: {} ({score:.3} disruptions per mean lifetime).",
        winner.name()
    );
    println!(
        "Note how the centralized relaxed-BO tree buys its short depth with heavy\n\
         eviction overhead, while ROST approaches it with two orders of magnitude\n\
         fewer reconnections — distributed, and stable at the top."
    );
}
