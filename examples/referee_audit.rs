//! The referee (reference-node) mechanism of §3.4: honest members get
//! their bandwidth-time products verified; cheaters claiming inflated
//! bandwidths or ages are caught; referee crashes are survived and
//! repaired.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example referee_audit
//! ```

use rom::overlay::NodeId;
use rom::rost::{Btp, RefereeRegistry, Verification};
use rom::sim::SimTime;
use std::collections::HashSet;

fn show(name: &str, v: Verification) {
    match v {
        Verification::Confirmed { witnessed } => {
            println!("  {name}: CONFIRMED (referees vouch for {witnessed:.1})");
        }
        Verification::Rejected { witnessed } => {
            println!("  {name}: REJECTED (referees only vouch for {witnessed:.1})");
        }
        Verification::Unverifiable => println!("  {name}: UNVERIFIABLE (no live referee)"),
    }
}

fn main() {
    // r_age = r_bw = 2 referees per member, 5-second heartbeats.
    let mut registry = RefereeRegistry::new(2, 2, 5.0);
    let mut dead: HashSet<NodeId> = HashSet::new();

    // An honest member joins at t=100 s. Its PARENT appoints the age
    // referees (the member cannot pick its own — collusion), and the
    // measurer set streams test data to gauge its real outbound bandwidth.
    let honest = NodeId(10);
    registry
        .register_join(honest, SimTime::from_secs(100.0), &[NodeId(1), NodeId(2)])
        .unwrap();
    let aggregate = registry
        .record_bandwidth(honest, &[1.2, 0.9, 0.9], &[NodeId(3), NodeId(4)])
        .unwrap();
    println!("honest member n10 joins; measured bandwidth {aggregate:.1} streams\n");

    let now = SimTime::from_secs(1_000.0);
    let live = |n: NodeId| !dead.contains(&n);

    println!("honest claims at t=1000s (age 900s, bandwidth 3.0):");
    show("age 900", registry.verify_age(honest, 900.0, now, live));
    show(
        "bandwidth 3.0",
        registry.verify_bandwidth(honest, 3.0, live),
    );

    // A cheater reports ten times its real resources to climb the tree.
    println!("\ncheating claims (age 9000s, bandwidth 30):");
    show("age 9000", registry.verify_age(honest, 9_000.0, now, live));
    show(
        "bandwidth 30",
        registry.verify_bandwidth(honest, 30.0, live),
    );

    // What an honest peer computes instead of trusting self-reports: the
    // witnessed BTP.
    let witnessed = registry.witnessed_btp(honest, now, live).unwrap();
    println!(
        "\nwitnessed BTP at t=1000s: {witnessed} (true value {})",
        Btp::new(3.0 * 900.0)
    );

    // Referee n1 crashes. Verification still succeeds through the second
    // referee (r_age > 1 is exactly for this), and the parent assigns a
    // replacement that synchronizes from the survivor.
    let mut dead_one = dead.clone();
    dead_one.insert(NodeId(1));
    let live_one = |n: NodeId| !dead_one.contains(&n);
    println!("\nreferee n1 crashes:");
    show("age 900", registry.verify_age(honest, 900.0, now, live_one));
    registry
        .replace_age_referee(honest, NodeId(1), NodeId(7))
        .unwrap();
    println!(
        "  replacement assigned; age referees are now {:?}",
        registry.age_referees_of(honest)
    );

    // If every referee disappears, claims become unverifiable — the
    // protocol treats such members as newcomers rather than trusting them.
    dead.extend([NodeId(2), NodeId(7)]);
    let live_none = |n: NodeId| !dead.contains(&n);
    println!("\nall age referees gone:");
    show(
        "age 900",
        registry.verify_age(honest, 900.0, now, live_none),
    );
}
