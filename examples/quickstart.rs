//! Quickstart: build a small overlay, watch churn hit it, and compare the
//! fault resilience of ROST against the minimum-depth baseline.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rom::engine::{AlgorithmKind, ChurnConfig, ChurnSim};

fn main() {
    println!("== rom quickstart: ROST vs minimum-depth under churn ==\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "algorithm", "disruptions", "delay (ms)", "stretch", "overhead"
    );

    for algorithm in [AlgorithmKind::MinimumDepth, AlgorithmKind::Rost] {
        // A 2000-member overlay with the paper's workload (§5): Bounded
        // Pareto bandwidths (≈55% free-riders), lognormal lifetimes
        // (mean ≈ 1809 s), Poisson arrivals by Little's law.
        let mut cfg = ChurnConfig::paper(algorithm, 2_000);
        cfg.seed = 42;

        let report = ChurnSim::new(cfg).run();
        println!(
            "{:<22} {:>12.3} {:>12.0} {:>12.2} {:>12.3}",
            algorithm.name(),
            report.disruptions_per_mean_lifetime(),
            report.service_delay_ms.mean(),
            report.stretch.mean(),
            report.reconnections_per_lifetime.mean(),
        );
    }

    println!(
        "\nROST trades a tiny switching overhead (reconnections per \
         lifetime) for markedly\nfewer streaming disruptions at comparable \
         service delay — the paper's Fig. 4/7/10 story."
    );
}
