//! Cooperative error recovery in action: a hand-built multicast tree, a
//! failure, and a packet-by-packet walk through CER — minimum-loss-
//! correlation group selection (Algorithm 1), explicit loss notification,
//! and residual-bandwidth striping.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example cooperative_recovery
//! ```

use rom::cer::{
    find_mlc_group, group_correlation, AncestorRecord, GapDetector, MlcOptions, PartialTree,
    RecoveryGroup, SeqRangeSet, StreamClock, StripePlan,
};
use rom::overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
use rom::sim::{SimRng, SimTime};

fn member(id: u64, bw: f64) -> MemberProfile {
    MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e9, Location(id as u32))
}

fn main() {
    // A three-branch tree under the source, eight members per branch.
    //
    //        source
    //       /   |   \
    //      1    2    3
    //     ...  ...  ...
    let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    let mut next = 10u64;
    for branch in [1u64, 2, 3] {
        tree.attach(member(branch, 4.0), NodeId::SOURCE).unwrap();
        for _ in 0..3 {
            tree.attach(member(next, 2.0), NodeId(branch)).unwrap();
            let child = next;
            next += 1;
            tree.attach(member(next, 0.5), NodeId(child)).unwrap();
            next += 1;
        }
    }
    println!(
        "tree built: {} members, depth {}",
        tree.len(),
        tree.max_depth()
    );

    // The member at the bottom of branch 1 assembles its partial view of
    // the tree from gossiped ancestor records (§4.1, Fig. 3)...
    let me = NodeId(11);
    let records: Vec<AncestorRecord> = tree
        .member_ids()
        .filter(|&m| m != me && m != NodeId::SOURCE)
        .filter_map(|m| AncestorRecord::from_tree(&tree, m))
        .collect();
    let partial = PartialTree::from_records(&records);
    println!(
        "partial tree reconstructed from {} gossiped records ({} nodes)",
        records.len(),
        partial.node_count()
    );

    // ...and runs Algorithm 1 to pick a minimum-loss-correlation recovery
    // group, excluding itself and its own ancestors.
    let mut rng = SimRng::seed_from(7).fork("mlc-demo");
    let mut exclude = tree.ancestors(me);
    exclude.push(me);
    let group_members = find_mlc_group(&partial, 3, &MlcOptions { exclude }, &mut rng);
    println!(
        "MLC recovery group: {group_members:?} (pairwise loss correlation {})",
        group_correlation(&tree, &group_members)
    );

    // Its upstream branch head (node 1) fails abruptly.
    let removed = tree.remove(NodeId(1)).unwrap();
    println!(
        "\nnode n1 departs abruptly: {} descendants disrupted",
        removed.affected_descendants.len()
    );

    // The member's gap detector sees both data and ELN fall silent and
    // (after the tolerance) would trigger a rejoin; meanwhile repair
    // starts immediately on the first missed delivery deadline.
    let clock = StreamClock::paper();
    let mut detector = GapDetector::paper();
    let failure_time = SimTime::from_secs(120.0);
    detector.on_data(clock.seq_at(failure_time));
    let live_seq = clock.seq_at(failure_time + 1.0);
    println!(
        "one second in, gap detector suspects parent failure: {}",
        detector.suspects_parent_failure(live_seq)
    );

    // Fifteen seconds of outage at 10 packets/second: 150 packets to
    // repair, striped across the group's residual bandwidths.
    let s0 = clock.seq_at(failure_time);
    let s1 = clock.seq_at(failure_time + 15.0);
    let residuals = [0.45, 0.30, 0.55]; // fractions of the stream rate
    let plan = StripePlan::plan_full_coverage(&residuals);
    println!(
        "\nrepairing packets {s0}..{s1} across {} members (aggregate {:.0}% of stream rate):",
        group_members.len(),
        plan.coverage() * 100.0
    );
    for seg in plan.segments() {
        println!(
            "  member #{} repairs (n mod 100) in [{}, {}) at ε = {:.2}",
            seg.member_index, seg.lo, seg.hi, residuals[seg.member_index]
        );
    }

    // Count on-time arrivals against playback deadlines.
    let mut received = SeqRangeSet::new();
    let t_repair = failure_time + 1.0;
    let mut served = vec![0u64; residuals.len()];
    let mut on_time = 0u64;
    for seq in s0..s1 {
        if let Some(idx) = plan.assigned_member(seq) {
            served[idx] += 1;
            let arrival = t_repair + served[idx] as f64 / (residuals[idx] * clock.rate_pps());
            if arrival <= clock.playback_deadline(seq) {
                on_time += 1;
                received.insert(seq);
            }
        }
    }
    println!(
        "\n{on_time}/{} packets repaired within their playback deadlines \
         ({} contiguous ranges in the buffer)",
        s1 - s0,
        received.ranges().len()
    );

    // The ordered-chain fallback for isolated losses: nearest member that
    // actually holds the packet serves it.
    let chain = RecoveryGroup::from_ordered(group_members.clone());
    if let Some(service) = chain.repair_chain(|m| m != group_members[0]) {
        println!(
            "single-packet repair chain: served by {} after {} hop(s)",
            service.server, service.chain_hops
        );
    }
}
