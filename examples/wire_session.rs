//! Wire-level session: peers exchanging real encoded frames — the JOIN
//! handshake, streaming with a loss, ELN propagation, and a chained
//! repair, all through the binary codec.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example wire_session
//! ```

use rom::overlay::{Location, NodeId};
use rom::wire::{InMemoryNetwork, Message};

fn main() {
    let mut net = InMemoryNetwork::new();
    net.add_source(NodeId(0), Location(0), 2);
    for id in 1..=6u64 {
        net.add_peer(NodeId(id), Location(id as u32), 2);
    }

    // Each peer discovers the overlay and JOINs the first member that
    // accepts (the §3.3 handshake, over real frames).
    for id in 1..=6u64 {
        let mut target = 0u64;
        loop {
            net.send(
                NodeId(id),
                NodeId(target),
                Message::Join {
                    joiner: NodeId(id),
                    location: Location(id as u32),
                    claimed_bandwidth: 2.0,
                },
            );
            net.run_to_quiescence();
            if net.peer(NodeId(id)).unwrap().is_attached() {
                break;
            }
            target += 1;
        }
    }
    println!("tree built over the wire:");
    for id in 0..=6u64 {
        let p = net.peer(NodeId(id)).unwrap();
        println!(
            "  n{id}: depth {}, parent {:?}, children {:?}",
            p.depth(),
            p.parent(),
            p.children()
        );
    }

    // Stream packets 0..10, then skip to 14 — an upstream loss.
    for seq in (0..10).chain(14..15) {
        net.send(
            NodeId(0),
            NodeId(0),
            Message::Data {
                seq,
                payload: vec![0; 32],
            },
        );
    }
    net.run_to_quiescence();

    // Deep members learned of the gap via ELN rather than suspecting
    // their parents.
    for id in 1..=6u64 {
        let p = net.peer(NodeId(id)).unwrap();
        if p.depth() >= 2 {
            println!(
                "n{id} (depth {}) ELN-missing: {:?}",
                p.depth(),
                p.eln_missing()
            );
        }
    }

    // Packets 10..14 reached the n1 branch out of band (say, n1 repaired
    // them from its own recovery group already) — model by delivering
    // them to n1 directly.
    for seq in 10..14u64 {
        net.send(
            NodeId(0),
            NodeId(1),
            Message::Data {
                seq,
                payload: vec![0; 32],
            },
        );
    }
    net.run_to_quiescence();

    // n6 repairs the gap through its recovery chain: n5 lacks the data
    // and NACK-forwards, n1 serves.
    let requester = NodeId(6);
    net.send(
        requester,
        NodeId(5),
        Message::RepairRequest {
            requester,
            seq_lo: 10,
            seq_hi: 14,
            chain: vec![NodeId(1), NodeId(2)],
        },
    );
    net.run_to_quiescence();
    let repaired: Vec<u64> = (10..14)
        .filter(|&s| net.peer(requester).unwrap().has_packet(s))
        .collect();
    println!("n6 repaired packets: {repaired:?}");

    let stats = net.stats();
    println!(
        "\nwire traffic: {} frames, {} bytes ({} to departed peers)",
        stats.frames_delivered, stats.bytes_moved, stats.frames_to_dead_peers
    );
}
