//! Streaming demo: the full Figs. 12–14 machinery on one configuration —
//! a live stream over a churning tree, outages, and CER repair — with the
//! bookkeeping printed out.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example streaming_demo [members] [group_size]
//! ```

use rom::engine::{AlgorithmKind, ChurnConfig, RecoveryStrategy, StreamingConfig, StreamingSim};
use rom::obs::{FieldValue, Level, Obs, RingSink, TraceEvent, Tracer};

fn main() {
    let mut args = std::env::args().skip(1);
    let members: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(800);
    let group_size: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(3);

    println!("== streaming over a churning {members}-member overlay ==");
    println!(
        "stream: 10 pkt/s, 5 s playback buffer; failure → 5 s detection + 10 s rejoin;\n\
         recovery group size K = {group_size}, residual helper bandwidth U(0, 9) pkt/s\n"
    );

    let mut rost_cer_trace: Vec<TraceEvent> = Vec::new();
    for (label, algorithm, strategy, traced) in [
        (
            "min-depth + single-source (baseline)",
            AlgorithmKind::MinimumDepth,
            RecoveryStrategy::SingleSource,
            false,
        ),
        (
            "min-depth + CER striping",
            AlgorithmKind::MinimumDepth,
            RecoveryStrategy::Cooperative,
            false,
        ),
        (
            "ROST + CER (the paper's scheme)",
            AlgorithmKind::Rost,
            RecoveryStrategy::Cooperative,
            true,
        ),
    ] {
        let mut churn = ChurnConfig::quick(algorithm, members);
        churn.seed = 11;
        churn.warmup_secs = 300.0;
        churn.measure_secs = 1_200.0;
        let mut cfg = StreamingConfig::paper(churn, group_size);
        cfg.strategy = strategy;

        // The flagship run is traced (Info level, so the ring keeps the
        // interesting events rather than every join); the timeline below
        // is reconstructed purely from the trace.
        let report = if traced {
            let (sink, handle) = RingSink::new(500_000);
            let tracer = Tracer::to_sink(Box::new(sink)).with_min_level(Level::Info);
            let (report, _obs) = StreamingSim::new(cfg).run_with_obs(Obs::new(tracer));
            rost_cer_trace = handle.events();
            report
        } else {
            StreamingSim::new(cfg).run()
        };
        let (mean, ci) = report.starving_ratio_percent.mean_with_ci95();
        println!("{label}:");
        println!(
            "  starving time ratio: {mean:.3}% ± {ci:.3}%  (over {} members)",
            report.starving_ratio_percent.count()
        );
        println!(
            "  outages: {}   packets repaired on time: {}   packets starved: {}",
            report.outages, report.packets_repaired_on_time, report.packets_starved
        );
        println!(
            "  tree beneath: {:.2} disruptions/lifetime, {:.0} ms delay\n",
            report.churn.disruptions_per_mean_lifetime(),
            report.churn.service_delay_ms.mean()
        );
    }

    print_failure_timeline(&rost_cer_trace);

    println!(
        "The baseline's single helper rarely has a full stream of residual bandwidth,\n\
         so every outage starves; CER stripes the gap across the group, and ROST makes\n\
         the outages themselves rarer — multiplying into the paper's ~an-order-of-\n\
         magnitude reduction (Fig. 14)."
    );
}

/// Reconstructs the anatomy of one recovery from the ROST+CER trace:
/// an abrupt failure, the ELN suppressing redundant rejoins beneath it,
/// the CER stripe plan, and the completed repair.
fn print_failure_timeline(events: &[TraceEvent]) {
    let Some(failure) = events.iter().find(|e| {
        e.kind == "departure"
            && field_u64(e, "descendants") > 0
            && !matches!(e.fields.get("graceful"), Some(FieldValue::Bool(true)))
    }) else {
        println!("(no abrupt failure with descendants in the trace)\n");
        return;
    };
    println!("-- trace-derived timeline: first failure with descendants, and its recovery --");
    let mut picked = vec![failure];
    for kind in ["outage", "eln_suppress", "stripe_plan", "repair"] {
        picked.extend(
            events
                .iter()
                .find(|e| e.kind == kind && e.time >= failure.time),
        );
    }
    picked.sort_by(|a, b| a.time.total_cmp(&b.time));
    for ev in picked {
        print_event(ev);
    }
    println!();
}

fn print_event(ev: &TraceEvent) {
    let fields: Vec<String> = ev
        .fields
        .iter()
        .map(|(k, v)| format!("{k}={}", fmt_field(v)))
        .collect();
    println!(
        "  t={:9.2}s  {:<9} {:<13} {}",
        ev.time,
        format!("[{}]", ev.subsystem.as_str()),
        ev.kind,
        fields.join(" ")
    );
}

fn field_u64(ev: &TraceEvent, key: &str) -> u64 {
    match ev.fields.get(key) {
        Some(&FieldValue::U64(n)) => n,
        _ => 0,
    }
}

fn fmt_field(v: &FieldValue) -> String {
    match *v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::I64(n) => n.to_string(),
        FieldValue::F64(x) => format!("{x:.3}"),
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::Str(s) => s.to_string(),
    }
}
