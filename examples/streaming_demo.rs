//! Streaming demo: the full Figs. 12–14 machinery on one configuration —
//! a live stream over a churning tree, outages, and CER repair — with the
//! bookkeeping printed out.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example streaming_demo [members] [group_size]
//! ```

use rom::engine::{AlgorithmKind, ChurnConfig, RecoveryStrategy, StreamingConfig, StreamingSim};

fn main() {
    let mut args = std::env::args().skip(1);
    let members: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(800);
    let group_size: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(3);

    println!("== streaming over a churning {members}-member overlay ==");
    println!(
        "stream: 10 pkt/s, 5 s playback buffer; failure → 5 s detection + 10 s rejoin;\n\
         recovery group size K = {group_size}, residual helper bandwidth U(0, 9) pkt/s\n"
    );

    for (label, algorithm, strategy) in [
        (
            "min-depth + single-source (baseline)",
            AlgorithmKind::MinimumDepth,
            RecoveryStrategy::SingleSource,
        ),
        (
            "min-depth + CER striping",
            AlgorithmKind::MinimumDepth,
            RecoveryStrategy::Cooperative,
        ),
        (
            "ROST + CER (the paper's scheme)",
            AlgorithmKind::Rost,
            RecoveryStrategy::Cooperative,
        ),
    ] {
        let mut churn = ChurnConfig::quick(algorithm, members);
        churn.seed = 11;
        churn.warmup_secs = 300.0;
        churn.measure_secs = 1_200.0;
        let mut cfg = StreamingConfig::paper(churn, group_size);
        cfg.strategy = strategy;

        let report = StreamingSim::new(cfg).run();
        let (mean, ci) = report.starving_ratio_percent.mean_with_ci95();
        println!("{label}:");
        println!(
            "  starving time ratio: {mean:.3}% ± {ci:.3}%  (over {} members)",
            report.starving_ratio_percent.count()
        );
        println!(
            "  outages: {}   packets repaired on time: {}   packets starved: {}",
            report.outages, report.packets_repaired_on_time, report.packets_starved
        );
        println!(
            "  tree beneath: {:.2} disruptions/lifetime, {:.0} ms delay\n",
            report.churn.disruptions_per_mean_lifetime(),
            report.churn.service_delay_ms.mean()
        );
    }

    println!(
        "The baseline's single helper rarely has a full stream of residual bandwidth,\n\
         so every outage starves; CER stripes the gap across the group, and ROST makes\n\
         the outages themselves rarer — multiplying into the paper's ~an-order-of-\n\
         magnitude reduction (Fig. 14)."
    );
}
