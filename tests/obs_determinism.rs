//! The observability pipeline is bitwise deterministic: two streaming
//! runs of the same seed produce byte-identical JSONL traces, identical
//! metric snapshots and identical run manifests — the property the
//! `--trace` provenance workflow (and its CI artifact) relies on.

use rom::engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
use rom::obs::{fnv1a, JsonlSink, MetricsSnapshot, Obs, RunManifest, SharedBuffer, Tracer};

fn config(seed: u64) -> StreamingConfig {
    let mut churn = ChurnConfig::quick(AlgorithmKind::Rost, 250);
    churn.seed = seed;
    churn.warmup_secs = 150.0;
    churn.measure_secs = 400.0;
    StreamingConfig::paper(churn, 2)
}

/// One traced run: the raw JSONL bytes, the metrics snapshot, and the
/// manifest a bench binary would write next to its CSV.
fn traced_run(seed: u64) -> (Vec<u8>, MetricsSnapshot, RunManifest) {
    let cfg = config(seed);
    let digest = fnv1a(format!("{cfg:?}").as_bytes());
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(buffer.clone());
    let obs = Obs::new(Tracer::to_sink(Box::new(sink)));
    let (report, obs) = StreamingSim::new(cfg).run_with_obs(obs);

    let snapshot = obs.snapshot();
    let mut manifest = RunManifest::new("obs_determinism", seed);
    manifest.config_digest = digest;
    manifest.events_processed = report.events_processed();
    manifest.trace_events = obs.trace_events();
    manifest.outcome = format!("{:?}", report.outcome());
    (buffer.contents(), snapshot, manifest)
}

#[test]
fn identical_seeds_produce_byte_identical_traces() {
    let (bytes_a, metrics_a, manifest_a) = traced_run(7);
    let (bytes_b, metrics_b, manifest_b) = traced_run(7);

    assert!(!bytes_a.is_empty(), "the trace must record something");
    assert_eq!(bytes_a, bytes_b, "JSONL traces must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metric snapshots must be identical");
    assert_eq!(manifest_a, manifest_b, "run manifests must be identical");
    assert_eq!(manifest_a.to_json(), manifest_b.to_json());

    // The trace is well-formed JSONL: every line an object.
    let text = String::from_utf8(bytes_a).expect("traces are UTF-8");
    assert!(text.lines().count() as u64 == manifest_a.trace_events);
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
    }
}

#[test]
fn different_seeds_produce_different_traces() {
    let (bytes_a, _, manifest_a) = traced_run(1);
    let (bytes_b, _, manifest_b) = traced_run(2);
    assert_ne!(bytes_a, bytes_b);
    assert_ne!(manifest_a.config_digest, manifest_b.config_digest);
}

#[test]
fn observation_does_not_perturb_the_run() {
    let plain = StreamingSim::new(config(7)).run();
    let (_, _, manifest) = traced_run(7);
    assert_eq!(plain.events_processed(), manifest.events_processed);

    let traced = {
        let buffer = SharedBuffer::new();
        let obs = Obs::new(Tracer::to_sink(Box::new(JsonlSink::new(buffer.clone()))));
        StreamingSim::new(config(7)).run_with_obs(obs).0
    };
    assert_eq!(plain.outages, traced.outages);
    assert_eq!(plain.packets_starved, traced.packets_starved);
    assert_eq!(
        plain.starving_ratio_percent.mean().to_bits(),
        traced.starving_ratio_percent.mean().to_bits()
    );
}
