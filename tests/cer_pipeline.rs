//! Cross-crate integration of the CER pipeline: full tree → gossiped
//! ancestor records → partial tree → Algorithm 1 → repair planning.

use rom::cer::{
    find_mlc_group, group_correlation, loss_correlation, partial_group_correlation, random_group,
    AncestorRecord, MlcOptions, PartialTree, StripePlan,
};
use rom::overlay::{paper_source, Location, MemberProfile, MulticastTree, NodeId};
use rom::sim::{SimRng, SimTime};
use rom::stats::BoundedPareto;

/// Grows a paper-workload tree of `n` members by min-depth placement.
fn grown_tree(n: u64, seed: u64) -> MulticastTree {
    let mut rng = SimRng::seed_from(seed);
    let bw = BoundedPareto::paper_bandwidth();
    let mut tree = MulticastTree::new(paper_source(Location(0)), 1.0);
    for id in 1..=n {
        let profile = MemberProfile::new(
            NodeId(id),
            bw.sample(&mut rng),
            SimTime::from_secs(id as f64),
            1e9,
            Location(id as u32),
        );
        let parent = tree
            .attached_by_depth()
            .find(|&p| tree.has_free_slot(p))
            .expect("paper workload always has capacity in a growing tree");
        tree.attach(profile, parent).unwrap();
    }
    tree.check_invariants().unwrap();
    tree
}

/// The partial tree built from gossiped records reports the same loss
/// correlations as the ground-truth tree, for every pair it knows.
#[test]
fn partial_tree_correlations_match_ground_truth() {
    let tree = grown_tree(300, 1);
    let mut rng = SimRng::seed_from(2);
    let members: Vec<NodeId> = tree
        .attached_by_depth()
        .filter(|&m| m != tree.root())
        .collect();
    let view = rng.sample(&members, 80);
    let records: Vec<AncestorRecord> = view
        .iter()
        .filter_map(|&m| AncestorRecord::from_tree(&tree, m))
        .collect();
    let partial = PartialTree::from_records(&records);
    for (i, &a) in view.iter().enumerate() {
        for &b in &view[i + 1..] {
            assert_eq!(
                partial.loss_correlation(a, b),
                loss_correlation(&tree, a, b),
                "pair ({a}, {b})"
            );
        }
    }
}

/// Algorithm 1 consistently produces groups with (weakly) lower pairwise
/// correlation than random selection, measured on the ground-truth tree.
#[test]
fn mlc_groups_beat_random_on_ground_truth_correlation() {
    let tree = grown_tree(400, 3);
    let mut rng = SimRng::seed_from(4);
    let members: Vec<NodeId> = tree
        .attached_by_depth()
        .filter(|&m| m != tree.root())
        .collect();

    let mut mlc_total = 0usize;
    let mut random_total = 0usize;
    for round in 0..60 {
        let requester = members[round * 5 % members.len()];
        let view = rng.sample(&members, 80);
        let records: Vec<AncestorRecord> = view
            .iter()
            .filter(|&&m| m != requester)
            .filter_map(|&m| AncestorRecord::from_tree(&tree, m))
            .collect();
        let partial = PartialTree::from_records(&records);
        let mut exclude = tree.ancestors(requester);
        exclude.push(requester);
        let options = MlcOptions { exclude };
        let mlc = find_mlc_group(&partial, 3, &options, &mut rng);
        let rnd = random_group(&partial, 3, &options, &mut rng);
        mlc_total += group_correlation(&tree, &mlc);
        random_total += group_correlation(&tree, &rnd);
        // The fragment's own estimate agrees in direction.
        assert!(partial_group_correlation(&partial, &mlc) <= group_correlation(&tree, &mlc));
    }
    assert!(
        mlc_total < random_total,
        "MLC total correlation {mlc_total} should beat random {random_total}"
    );
}

/// Recovery groups never contain the requester or its own ancestors —
/// they fail together with it, which is the whole point of MLC.
#[test]
fn groups_exclude_fate_sharing_members() {
    let tree = grown_tree(200, 5);
    let mut rng = SimRng::seed_from(6);
    let members: Vec<NodeId> = tree
        .attached_by_depth()
        .filter(|&m| m != tree.root())
        .collect();
    for &requester in members.iter().take(40) {
        let records: Vec<AncestorRecord> = members
            .iter()
            .filter(|&&m| m != requester)
            .filter_map(|&m| AncestorRecord::from_tree(&tree, m))
            .collect();
        let partial = PartialTree::from_records(&records);
        let mut exclude = tree.ancestors(requester);
        exclude.push(requester);
        let group = find_mlc_group(
            &partial,
            4,
            &MlcOptions {
                exclude: exclude.clone(),
            },
            &mut rng,
        );
        for g in &group {
            assert!(!exclude.contains(g), "{g} fate-shares with {requester}");
            assert_ne!(*g, tree.root());
        }
    }
}

/// End-to-end repair arithmetic: striping a 15-second outage across a
/// group covering the full stream rate repairs almost everything within
/// the §6 playback budget. A small late tail is inherent to the paper's
/// `(n mod 100)` rule: a 150-packet gap spans 1.5 modulo periods, so the
/// members owning the repeated slots serve proportionally more than their
/// residual share.
#[test]
fn full_rate_group_repairs_outage_within_deadlines() {
    use rom::cer::StreamClock;
    let clock = StreamClock::paper();
    let t0 = 500.0;
    let s0 = clock.seq_at(SimTime::from_secs(t0));
    let s1 = clock.seq_at(SimTime::from_secs(t0 + 15.0));
    let residuals = [0.5, 0.4, 0.3]; // Σ = 1.2 ≥ 1: full-rate recovery
    let plan = StripePlan::plan(&residuals);
    assert_eq!(plan.coverage(), 1.0);

    let t_repair = SimTime::from_secs(t0 + 1.0);
    let mut served = [0u64; 3];
    let mut late = 0;
    for seq in s0..s1 {
        let idx = plan.assigned_member(seq).expect("full coverage");
        served[idx] += 1;
        let arrival = t_repair + served[idx] as f64 / (residuals[idx] * clock.rate_pps());
        if arrival > clock.playback_deadline(seq) {
            late += 1;
        }
    }
    let total = s1 - s0;
    assert!(
        late * 5 < total,
        "a full-rate group should miss few deadlines: {late}/{total} late"
    );
}
