//! Integration tests for the streaming experiments' headline shapes
//! (Figs. 12–14) at reduced scale.

use rom::engine::{AlgorithmKind, ChurnConfig, RecoveryStrategy, StreamingConfig, StreamingSim};

fn config(
    algorithm: AlgorithmKind,
    k: usize,
    strategy: RecoveryStrategy,
    seed: u64,
) -> StreamingConfig {
    let mut churn = ChurnConfig::quick(algorithm, 400);
    churn.seed = seed;
    churn.warmup_secs = 200.0;
    churn.measure_secs = 700.0;
    let mut cfg = StreamingConfig::paper(churn, k);
    cfg.strategy = strategy;
    cfg
}

fn mean_ratio(
    algorithm: AlgorithmKind,
    k: usize,
    strategy: RecoveryStrategy,
    seeds: std::ops::RangeInclusive<u64>,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0u32;
    for seed in seeds {
        let report = StreamingSim::new(config(algorithm, k, strategy, seed)).run();
        total += report.starving_ratio_percent.mean();
        n += 1;
    }
    total / f64::from(n)
}

/// Fig. 12: growing the recovery group size sharply reduces starvation.
#[test]
fn bigger_recovery_groups_starve_less() {
    let k1 = mean_ratio(
        AlgorithmKind::MinimumDepth,
        1,
        RecoveryStrategy::Cooperative,
        1..=3,
    );
    let k3 = mean_ratio(
        AlgorithmKind::MinimumDepth,
        3,
        RecoveryStrategy::Cooperative,
        1..=3,
    );
    assert!(
        k3 < k1 * 0.7,
        "K=3 ({k3:.3}%) should be well below K=1 ({k1:.3}%)"
    );
}

/// Fig. 14: cooperative striping beats single-source recovery at the same
/// group size.
#[test]
fn cooperative_recovery_beats_single_source() {
    let coop = mean_ratio(
        AlgorithmKind::MinimumDepth,
        3,
        RecoveryStrategy::Cooperative,
        1..=3,
    );
    let single = mean_ratio(
        AlgorithmKind::MinimumDepth,
        3,
        RecoveryStrategy::SingleSource,
        1..=3,
    );
    assert!(
        coop < single,
        "cooperative ({coop:.3}%) should beat single-source ({single:.3}%)"
    );
}

/// Fig. 14's combined claim: ROST+CER beats MinDepth+single-source by a
/// wide margin at equal group size.
#[test]
fn rost_cer_beats_baseline_scheme() {
    let baseline = mean_ratio(
        AlgorithmKind::MinimumDepth,
        2,
        RecoveryStrategy::SingleSource,
        1..=3,
    );
    let rost_cer = mean_ratio(AlgorithmKind::Rost, 2, RecoveryStrategy::Cooperative, 1..=3);
    assert!(
        rost_cer < baseline * 0.7,
        "ROST+CER ({rost_cer:.3}%) should be well below the baseline ({baseline:.3}%)"
    );
}

/// Fig. 13's direction: a larger playback buffer absorbs more repair
/// lateness.
#[test]
fn larger_buffers_starve_less() {
    let mut tight_total = 0.0;
    let mut roomy_total = 0.0;
    for seed in 1..=3 {
        let mut tight = config(
            AlgorithmKind::MinimumDepth,
            1,
            RecoveryStrategy::Cooperative,
            seed,
        );
        tight.buffer_secs = 5.0;
        let mut roomy = tight.clone();
        roomy.buffer_secs = 25.0;
        tight_total += StreamingSim::new(tight).run().starving_ratio_percent.mean();
        roomy_total += StreamingSim::new(roomy).run().starving_ratio_percent.mean();
    }
    assert!(
        roomy_total < tight_total,
        "25 s buffers ({roomy_total:.3}) should beat 5 s buffers ({tight_total:.3})"
    );
}

/// Streaming runs expose consistent bookkeeping: outages were observed,
/// repaired packets plus starved packets are plausible, ratios bounded.
#[test]
fn streaming_accounting_is_consistent() {
    let report = StreamingSim::new(config(
        AlgorithmKind::MinimumDepth,
        2,
        RecoveryStrategy::Cooperative,
        9,
    ))
    .run();
    assert!(report.outages > 0);
    assert!(report.packets_repaired_on_time + report.packets_starved > 0);
    assert!(report.starving_ratio_percent.count() > 100);
    assert!(report.starving_ratio_percent.mean() >= 0.0);
    assert!(report.starving_ratio_percent.max() <= 100.0);
    // The churn substrate beneath is intact.
    assert!(report.churn.population.mean() > 100.0);
}
