//! Old-vs-new event queue equivalence wall.
//!
//! The ladder-queue rewrite of `rom_sim::EventQueue` must preserve the
//! pinned `(time, seq)` pop order **bitwise**: every trace, manifest and
//! figure artifact in this workspace is a function of the exact event
//! sequence, so "almost the same order" is a determinism break, not a
//! tolerable drift. The pre-rewrite `BinaryHeap` implementation is
//! embedded below, verbatim from the last commit before the swap, and
//! both queues are driven through identical randomized schedules — DES-shaped
//! mostly-monotone pushes, tie floods, wide scatters across epoch-boundary
//! times (negative, ±0.0, subnormal, huge, `FAR_FUTURE`), interleaved
//! pops, burst drains and mid-run clears — on several fixed seeds. After
//! every operation the two must agree on length, high-water mark and peek
//! time; every pop must return the same `(time, payload)` down to the bit
//! pattern of the timestamp.

use rom_sim::{EventQueue, SimTime};

/// The pre-ladder `EventQueue`, extracted from `crates/sim/src/queue.rs`
/// before the rewrite with only naming adjusted. Kept as a reference
/// model: do not "fix" or optimize this copy.
mod old_model {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    use rom_sim::SimTime;

    #[derive(Debug)]
    struct Scheduled<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Scheduled<E> {}

    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest event pops
            // first, and break timestamp ties by insertion sequence (FIFO).
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The old heap-backed queue, API-compatible with the ladder rewrite.
    #[derive(Debug)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
        high_water: usize,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                high_water: 0,
            }
        }

        pub fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Scheduled { time, seq, event });
            if self.heap.len() > self.high_water {
                self.high_water = self.heap.len();
            }
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|s| (s.time, s.event))
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|s| s.time)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn high_water_mark(&self) -> usize {
            self.high_water
        }

        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Times sitting on representation boundaries: signs, zeros, subnormals,
/// exponent edges, infinity. The ladder's `u64` key fold must keep all of
/// them in `total_cmp` order, FIFO within exact-bit ties.
const EPOCH_BOUNDARY_TIMES: [f64; 10] = [
    f64::NEG_INFINITY,
    -1.0e18,
    -1.5,
    -0.0,
    0.0,
    5.0e-324, // smallest positive subnormal
    f64::MIN_POSITIVE,
    1.0,
    1.0e300,
    f64::INFINITY,
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Workload {
    /// DES-shaped: mostly-monotone near-future pushes, pop-driven clock.
    Des,
    /// Heavy exact-time ties in large bursts, drained in chunks.
    TieFlood,
    /// Wide random scatter over epoch-boundary times with mid-run clears.
    Scatter,
}

/// Drives the ladder queue and the embedded heap model through one
/// identical randomized schedule, checking bitwise agreement throughout.
fn run_wall(seed: u64, workload: Workload, ops: usize) {
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut old_q: old_model::HeapQueue<u64> = old_model::HeapQueue::new();
    let mut rng = Rng::new(seed);
    let mut clock = 0.0f64;
    let mut payload = 0u64;
    let mut recent: Vec<f64> = Vec::new();
    let (mut pushes, mut ties, mut pops, mut clears, mut boundary) = (0u64, 0u64, 0u64, 0u64, 0u64);

    let mut push_both = |new_q: &mut EventQueue<u64>,
                         old_q: &mut old_model::HeapQueue<u64>,
                         recent: &mut Vec<f64>,
                         t: f64,
                         payload: &mut u64| {
        let time = SimTime::from_secs(t);
        new_q.push(time, *payload);
        old_q.push(time, *payload);
        *payload += 1;
        if recent.len() < 64 {
            recent.push(t);
        } else {
            recent[(*payload % 64) as usize] = t;
        }
    };

    for _ in 0..ops {
        let roll = rng.below(100);
        match workload {
            Workload::Des => {
                if roll < 55 {
                    // Near-future push relative to the advancing clock.
                    let t = clock + rng.below(10_000) as f64 / 100.0;
                    push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                    pushes += 1;
                } else if roll < 70 && !recent.is_empty() {
                    // Exact tie with a recently scheduled time.
                    let t = recent[rng.below(recent.len() as u64) as usize];
                    push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                    ties += 1;
                } else if roll < 75 {
                    let t = EPOCH_BOUNDARY_TIMES[rng.below(10) as usize];
                    push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                    boundary += 1;
                } else {
                    pops += pop_and_compare(&mut new_q, &mut old_q, &mut clock);
                }
            }
            Workload::TieFlood => {
                if roll < 50 {
                    // A burst of identical timestamps.
                    let t = clock + rng.below(50) as f64;
                    for _ in 0..(1 + rng.below(40)) {
                        push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                        ties += 1;
                    }
                } else if roll < 60 {
                    let t = EPOCH_BOUNDARY_TIMES[rng.below(10) as usize];
                    for _ in 0..(1 + rng.below(10)) {
                        push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                        boundary += 1;
                    }
                } else {
                    // Chunked drain.
                    for _ in 0..(1 + rng.below(30)) {
                        pops += pop_and_compare(&mut new_q, &mut old_q, &mut clock);
                    }
                }
            }
            Workload::Scatter => {
                if roll < 45 {
                    // Wide scatter: random magnitude, random sign.
                    let mag = rng.below(60) as i32 - 20;
                    let t = (rng.below(1_000_000) as f64 / 997.0) * 10f64.powi(mag)
                        * if rng.below(5) == 0 { -1.0 } else { 1.0 };
                    push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                    pushes += 1;
                } else if roll < 60 {
                    let t = EPOCH_BOUNDARY_TIMES[rng.below(10) as usize];
                    push_both(&mut new_q, &mut old_q, &mut recent, t, &mut payload);
                    boundary += 1;
                } else if roll < 62 {
                    // Mid-run clear: high-water and FIFO seq survive.
                    new_q.clear();
                    old_q.clear();
                    clock = 0.0;
                    clears += 1;
                } else {
                    pops += pop_and_compare(&mut new_q, &mut old_q, &mut clock);
                }
            }
        }
        // Observable state must agree after every operation.
        assert_eq!(new_q.len(), old_q.len(), "length diverged (seed {seed})");
        assert_eq!(
            new_q.high_water_mark(),
            old_q.high_water_mark(),
            "high-water diverged (seed {seed})"
        );
        match (new_q.peek_time(), old_q.peek_time()) {
            (Some(a), Some(b)) => assert_eq!(
                a.as_secs().to_bits(),
                b.as_secs().to_bits(),
                "peek_time diverged (seed {seed})"
            ),
            (a, b) => assert_eq!(a.is_none(), b.is_none(), "peek presence diverged"),
        }
    }

    // Full drain: the tail must agree too.
    loop {
        let done = pop_and_compare(&mut new_q, &mut old_q, &mut clock) == 0;
        pops += u64::from(!done);
        if done {
            break;
        }
    }
    assert!(new_q.is_empty() && old_q.len() == 0);

    // The schedule actually exercised what it claims to.
    assert!(pushes > 0 || workload == Workload::TieFlood, "no pushes");
    assert!(ties > 0 || workload == Workload::Scatter, "no ties");
    assert!(pops > 0, "no pops");
    assert!(boundary > 0, "no epoch-boundary times");
    if workload == Workload::Scatter {
        assert!(clears > 0, "no clears");
    }
}

/// Pops both queues once and asserts bitwise agreement. Returns the number
/// of events popped (0 or 1) so callers can count drains.
fn pop_and_compare(
    new_q: &mut EventQueue<u64>,
    old_q: &mut old_model::HeapQueue<u64>,
    clock: &mut f64,
) -> u64 {
    let a = new_q.pop();
    let b = old_q.pop();
    match (a, b) {
        (None, None) => 0,
        (Some((ta, ea)), Some((tb, eb))) => {
            assert_eq!(
                ta.as_secs().to_bits(),
                tb.as_secs().to_bits(),
                "pop time diverged"
            );
            assert_eq!(ea, eb, "pop payload diverged at t={ta}");
            if ta.is_finite() {
                *clock = ta.as_secs().max(*clock);
            }
            1
        }
        (a, b) => panic!("pop presence diverged: new={a:?} old={b:?}"),
    }
}

const SEEDS: [u64; 4] = [7, 42, 1337, 20_260_808];

#[test]
fn des_schedules_pop_bitwise_identically() {
    for seed in SEEDS {
        run_wall(seed, Workload::Des, 20_000);
    }
}

#[test]
fn tie_floods_pop_bitwise_identically() {
    for seed in SEEDS {
        run_wall(seed, Workload::TieFlood, 4_000);
    }
}

#[test]
fn scattered_epoch_boundary_schedules_pop_bitwise_identically() {
    for seed in SEEDS {
        run_wall(seed, Workload::Scatter, 20_000);
    }
}
