//! Tier-1 chaos suite: every fault-injection scenario in the rom-chaos
//! catalogue runs through the full streaming engine with every runtime
//! invariant armed, across several seeds, and (a) no invariant ever
//! trips, (b) the observability trace of a (scenario, seed) pair is
//! byte-identical across repeated runs, and (c) the chaos RNG stream is
//! isolated — arming a do-nothing scenario does not perturb the run.

use rom::chaos::{InvariantRegistry, Scenario};
use rom::engine::{AlgorithmKind, ChurnConfig, StreamingConfig, StreamingSim};
use rom::obs::{JsonlSink, Obs, SharedBuffer, Tracer};

const SEEDS: [u64; 3] = [11, 23, 47];

fn config(scenario: Option<&str>, seed: u64) -> StreamingConfig {
    let mut churn = ChurnConfig::quick(AlgorithmKind::Rost, 150);
    churn.seed = seed;
    churn.warmup_secs = 150.0;
    churn.measure_secs = 400.0;
    // Injections start after warmup equilibrium and finish inside the
    // measurement window.
    churn.chaos = scenario.map(|name| {
        Scenario::by_name(name, 180.0, 300.0).expect("catalogue scenario must resolve")
    });
    StreamingConfig::paper(churn, 2)
}

/// One fully-armed run: the JSONL trace bytes and the registry with
/// whatever violations it accumulated.
fn checked_run(scenario: &str, seed: u64) -> (Vec<u8>, InvariantRegistry) {
    let buffer = SharedBuffer::new();
    let obs = Obs::new(Tracer::to_sink(Box::new(JsonlSink::new(buffer.clone()))));
    let (_report, registry, _obs) =
        StreamingSim::new(config(Some(scenario), seed)).run_checked(InvariantRegistry::with_all(), obs);
    (buffer.contents(), registry)
}

#[test]
fn every_scenario_upholds_every_invariant_across_seeds() {
    for scenario in Scenario::NAMES {
        for seed in SEEDS {
            let (trace, registry) = checked_run(scenario, seed);
            assert_eq!(registry.len(), 6, "the full invariant set must be armed");
            assert!(
                registry.is_clean(),
                "scenario `{scenario}` seed {seed} tripped: {:#?}",
                registry.violations()
            );
            assert!(!trace.is_empty(), "a checked run must leave a trace");
        }
    }
}

#[test]
fn checked_chaos_runs_are_byte_identical_per_seed() {
    for scenario in Scenario::NAMES {
        let (first, _) = checked_run(scenario, 11);
        let (second, _) = checked_run(scenario, 11);
        assert!(
            first == second,
            "scenario `{scenario}` seed 11: traces diverged between repeat runs"
        );
    }
}

#[test]
fn different_seeds_diverge_under_chaos() {
    let (a, _) = checked_run("combined", 11);
    let (b, _) = checked_run("combined", 23);
    assert_ne!(a, b, "distinct seeds must explore distinct executions");
}

#[test]
fn armed_baseline_matches_unarmed_run() {
    // The chaos RNG is a dedicated fork and the invariant registry only
    // reads engine state, so a scenario with zero injections must
    // reproduce the plain run event-for-event.
    let plain = StreamingSim::new(config(None, 11)).run();
    let (report, registry, _obs) = StreamingSim::new(config(Some("baseline"), 11))
        .run_checked(InvariantRegistry::with_all(), Obs::disabled());
    assert!(registry.is_clean());
    assert_eq!(plain.events_processed(), report.events_processed());
    assert_eq!(plain.outages, report.outages);
    assert_eq!(plain.packets_starved, report.packets_starved);
    assert_eq!(
        plain.starving_ratio_percent.mean().to_bits(),
        report.starving_ratio_percent.mean().to_bits()
    );
}

#[test]
fn injected_scenarios_actually_perturb_the_run() {
    let (baseline, _) = checked_run("baseline", 11);
    for scenario in [
        "correlated-failures",
        "flash-crowd",
        "flapping",
        "bandwidth-decay",
        "bursty-loss",
        "capacity-ramp",
        "bufferbloat",
        "mobile-member",
    ] {
        let (perturbed, _) = checked_run(scenario, 11);
        assert_ne!(
            baseline, perturbed,
            "scenario `{scenario}` left no mark on the trace"
        );
    }
}
