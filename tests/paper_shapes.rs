//! Integration tests asserting the paper's headline *qualitative* results
//! at reduced scale — the shapes of Figs. 4, 7, 8 and 10, averaged over a
//! few seeds to damp churn noise.

use rom::engine::{AlgorithmKind, ChurnConfig, ChurnReport, ChurnSim};

/// Runs `algorithm` over `seeds` and averages a metric.
fn mean_metric(
    algorithm: AlgorithmKind,
    size: usize,
    seeds: std::ops::RangeInclusive<u64>,
    metric: impl Fn(&ChurnReport) -> f64,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0u32;
    for seed in seeds {
        let mut cfg = ChurnConfig::quick(algorithm, size);
        cfg.seed = seed;
        cfg.warmup_secs = 300.0;
        cfg.measure_secs = 900.0;
        total += metric(&ChurnSim::new(cfg).run());
        n += 1;
    }
    total / f64::from(n)
}

/// Fig. 4's central claim: ROST disrupts fewer members per lifetime than
/// the reliability-ignorant baselines.
#[test]
fn rost_beats_min_depth_and_longest_first_on_disruptions() {
    let rost = mean_metric(AlgorithmKind::Rost, 500, 1..=3, |r| {
        r.disruptions_per_mean_lifetime()
    });
    let min_depth = mean_metric(AlgorithmKind::MinimumDepth, 500, 1..=3, |r| {
        r.disruptions_per_mean_lifetime()
    });
    let longest = mean_metric(AlgorithmKind::LongestFirst, 500, 1..=3, |r| {
        r.disruptions_per_mean_lifetime()
    });
    assert!(
        rost < min_depth,
        "ROST ({rost:.3}) should beat min-depth ({min_depth:.3})"
    );
    assert!(
        rost < longest,
        "ROST ({rost:.3}) should beat longest-first ({longest:.3})"
    );
}

/// Fig. 7/8: longest-first pays for its tall tree in delay and stretch;
/// ROST is the best of the three distributed algorithms.
#[test]
fn rost_has_smallest_delay_among_distributed_algorithms() {
    let delay = |alg| mean_metric(alg, 500, 1..=3, |r: &ChurnReport| r.service_delay_ms.mean());
    let rost = delay(AlgorithmKind::Rost);
    let min_depth = delay(AlgorithmKind::MinimumDepth);
    let longest = delay(AlgorithmKind::LongestFirst);
    assert!(
        rost < min_depth,
        "ROST {rost:.0}ms vs min-depth {min_depth:.0}ms"
    );
    assert!(
        rost < longest,
        "ROST {rost:.0}ms vs longest-first {longest:.0}ms"
    );

    let stretch = |alg| mean_metric(alg, 500, 1..=3, |r: &ChurnReport| r.stretch.mean());
    assert!(stretch(AlgorithmKind::Rost) < stretch(AlgorithmKind::LongestFirst));
}

/// §3.1: the strict orderings produce characteristic tree shapes —
/// bandwidth-ordered shortest, longest-first tallest.
#[test]
fn tree_depth_orderings() {
    let depth = |alg| mean_metric(alg, 500, 1..=2, |r: &ChurnReport| r.depth.mean());
    let bo = depth(AlgorithmKind::RelaxedBandwidthOrdered);
    let md = depth(AlgorithmKind::MinimumDepth);
    let lf = depth(AlgorithmKind::LongestFirst);
    assert!(
        bo < md,
        "relaxed-BO ({bo:.1}) should be shorter than min-depth ({md:.1})"
    );
    assert!(
        lf > md,
        "longest-first ({lf:.1}) should be taller than min-depth ({md:.1})"
    );
}

/// Fig. 10: protocol overhead — zero for the maintenance-free baselines,
/// small for ROST, heavy for the centralized evicting algorithms.
#[test]
fn protocol_overhead_orderings() {
    let overhead = |alg| {
        mean_metric(alg, 500, 1..=2, |r: &ChurnReport| {
            r.reconnections_per_lifetime.mean()
        })
    };
    assert_eq!(overhead(AlgorithmKind::MinimumDepth), 0.0);
    assert_eq!(overhead(AlgorithmKind::LongestFirst), 0.0);
    let rost = overhead(AlgorithmKind::Rost);
    let bo = overhead(AlgorithmKind::RelaxedBandwidthOrdered);
    assert!(rost > 0.0, "ROST does switch occasionally");
    assert!(
        rost < 1.0,
        "ROST needs far less than one reconnection per lifetime, got {rost:.3}"
    );
    assert!(
        bo > 2.0 * rost,
        "relaxed-BO ({bo:.3}) should cost much more than ROST ({rost:.3})"
    );
}

/// Fig. 11's qualitative direction: a smaller switching interval gives
/// more adjusting opportunities, hence more (but still cheap) overhead.
#[test]
fn smaller_switching_interval_costs_more_overhead() {
    let with_interval = |interval: f64| {
        let mut total = 0.0;
        for seed in 1..=3 {
            let mut cfg = ChurnConfig::quick(AlgorithmKind::Rost, 500);
            cfg.seed = seed;
            cfg.warmup_secs = 300.0;
            cfg.measure_secs = 900.0;
            cfg.rost = cfg.rost.with_switching_interval(interval);
            total += ChurnSim::new(cfg).run().reconnections_per_lifetime.mean();
        }
        total / 3.0
    };
    let fast = with_interval(120.0);
    let slow = with_interval(1_800.0);
    assert!(
        fast > slow,
        "120 s interval ({fast:.3}) should cost more than 1800 s ({slow:.3})"
    );
    assert!(fast < 1.0, "even the fast interval stays cheap: {fast:.3}");
}
