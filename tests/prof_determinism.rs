//! The determinism wall for the span profiler: enabling `--profile`
//! must not perturb a single deterministic artifact, and the profile's
//! own deterministic half (span paths and op counts) must be identical
//! regardless of worker count.
//!
//! Also hosts the zero-allocation guard for the disabled span path —
//! this file is its own test binary, so the counting global allocator
//! sees only this test's traffic (mirroring `crates/obs/tests/overhead.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts heap allocations made through the global allocator, per
/// thread (the libtest harness's own threads must not count against
/// the path under test).
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates directly to the system allocator; the counter is a
// const-initialized thread-local `Cell` (no lazy allocation), read with
// `try_with` so allocation during TLS teardown stays safe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

use rom_bench::{instrumented_churn_cell, CellOut, Json, Sidecars, Sweep};
use rom_engine::{AlgorithmKind, ChurnConfig};
use rom_obs::Prof;

/// A small-but-real churn configuration with real switching activity.
fn quick_churn(seed: u64) -> ChurnConfig {
    let mut cfg = ChurnConfig::quick(AlgorithmKind::Rost, 150).with_seed(seed);
    cfg.warmup_secs = 150.0;
    cfg.measure_secs = 400.0;
    cfg
}

const TRACE_ONLY: Sidecars = Sidecars {
    trace: Some("unused-designator"),
    profile: None,
};
const TRACE_AND_PROFILE: Sidecars = Sidecars {
    trace: Some("unused-designator"),
    profile: Some("unused-designator"),
};
const PROFILE_ONLY: Sidecars = Sidecars {
    trace: None,
    profile: Some("unused-designator"),
};

/// Profiling on vs off: the report and every deterministic trace
/// artifact must be byte-identical, for each of three seeds.
#[test]
fn profiling_does_not_perturb_deterministic_artifacts() {
    for seed in 1..=3u64 {
        let (plain_report, plain_trace, plain_profile) =
            instrumented_churn_cell("prof_det", quick_churn(seed), seed, TRACE_ONLY);
        let (prof_report, prof_trace, profile) =
            instrumented_churn_cell("prof_det", quick_churn(seed), seed, TRACE_AND_PROFILE);

        assert!(plain_profile.is_none(), "seed {seed}: unrequested profile");
        let profile = profile.expect("profile requested");
        assert!(profile.contains("\"kind\":\"rom-profile\""));

        assert_eq!(
            format!("{plain_report:?}"),
            format!("{prof_report:?}"),
            "seed {seed}: report (stdout source) diverged under profiling"
        );
        let plain_trace = plain_trace.expect("trace requested");
        let prof_trace = prof_trace.expect("trace requested");
        assert_eq!(
            plain_trace.jsonl, prof_trace.jsonl,
            "seed {seed}: trace bytes diverged under profiling"
        );
        assert_eq!(
            plain_trace.manifest.to_json(),
            prof_trace.manifest.to_json(),
            "seed {seed}: manifest diverged under profiling"
        );
        assert_eq!(
            plain_trace.metrics_json, prof_trace.metrics_json,
            "seed {seed}: metrics diverged under profiling"
        );
        assert_eq!(
            plain_trace.health, prof_trace.health,
            "seed {seed}: health timeline diverged under profiling"
        );
    }
}

/// The deterministic half of a parsed profile: `(path, count)` per span,
/// path-sorted (wall-time fields are explicitly excluded).
fn op_counts(profile: &str) -> Vec<(String, u64)> {
    let doc = Json::parse(profile).expect("profile parses");
    doc.get("spans")
        .and_then(Json::as_arr)
        .expect("spans array")
        .iter()
        .map(|s| {
            (
                s.str_field("path").expect("span path").to_string(),
                s.u64_field("count").expect("span count"),
            )
        })
        .collect()
}

/// Runs a 3-seed profiled sweep and returns each seed's op counts.
fn profiled_sweep(jobs: usize) -> Vec<Vec<(String, u64)>> {
    let out = Sweep::with_jobs(jobs).run(1, 3, |cell| {
        let (report, trace, profile) =
            instrumented_churn_cell("prof_jobs", quick_churn(cell.seed), cell.seed, PROFILE_ONLY);
        assert!(trace.is_none());
        CellOut {
            report,
            warnings: Vec::new(),
            trace: None,
            profile,
        }
    });
    out.profiles
        .iter()
        .map(|(_, profile)| op_counts(profile))
        .collect()
}

/// Span paths and op counts are a pure function of the simulated run:
/// identical per seed whether the sweep ran serially or on 4 workers.
#[test]
fn span_op_counts_are_seed_deterministic_across_jobs() {
    let serial = profiled_sweep(1);
    let parallel = profiled_sweep(4);
    assert_eq!(serial.len(), 3, "one profile per seed");
    assert_eq!(serial, parallel, "op counts diverged with jobs=4");

    // The instrumentation actually covers the ROST hot paths: engine
    // dispatch and the switch/restamp + lock-assembly pairs record ops.
    let paths: Vec<&str> = serial[0].iter().map(|(p, _)| p.as_str()).collect();
    for needle in [
        "engine.arrival",
        "engine.departure",
        "overlay.switch/overlay.switch_restamp",
        "rost.attempt/rost.lock_assembly",
    ] {
        assert!(
            paths.iter().any(|p| p.ends_with(needle) || *p == needle),
            "no span path matches {needle}: {paths:?}"
        );
    }
    // Seeds genuinely differ (the sweep isn't collapsing cells).
    assert_ne!(serial[0], serial[1], "seeds 1 and 2 produced equal counts");
}

/// The eviction scan (an ordered-algorithm path ROST never takes) is
/// instrumented too.
#[test]
fn eviction_scan_is_instrumented_under_ordered_algorithms() {
    let mut cfg = ChurnConfig::quick(AlgorithmKind::RelaxedBandwidthOrdered, 150).with_seed(1);
    cfg.warmup_secs = 150.0;
    cfg.measure_secs = 400.0;
    let (_report, _trace, profile) = instrumented_churn_cell("prof_bo", cfg, 1, PROFILE_ONLY);
    let counts = op_counts(&profile.expect("profile requested"));
    assert!(
        counts
            .iter()
            .any(|(p, n)| p.ends_with("overlay.find_eviction") && *n > 0),
        "no find_eviction span recorded: {counts:?}"
    );
}

/// A disabled profiler handle must not allocate per span — the hot
/// paths run with it permanently in place.
#[test]
fn disabled_span_path_is_allocation_free() {
    let prof = Prof::disabled();
    // Warm up whatever lazy state exists.
    for _ in 0..8 {
        let _g = prof.span("warmup");
    }
    let before = allocations();
    for _ in 0..10_000 {
        let _g = prof.span("hot");
        let _h = prof.span("nested");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled span path allocated {} times over 20k spans",
        after - before
    );
}
