//! The determinism wall for the parallel sweep engine: the same grid run
//! with `jobs = 1`, `2` and `8` must produce *byte-identical* merged
//! trace artifacts (JSONL, aggregate manifest, metrics sidecar) and
//! identical report vectors — for churn sweeps, streaming sweeps, and
//! chaos-scenario sweeps.
//!
//! Worker count only changes who runs a cell and when; the seed-ordered
//! result slots mean nothing observable may change. Each cell here is
//! traced, so any cross-thread interleaving or ordering leak would show
//! up directly in the merged bytes.

use rom_bench::{traced_churn_cell, traced_streaming_cell, CellOut, Sweep};
use rom_chaos::Scenario;
use rom_engine::{AlgorithmKind, ChurnConfig, StreamingConfig};

/// Every observable output of one sweep, in comparable form.
#[derive(Debug, PartialEq)]
struct Observed {
    reports: String,
    jsonl: Vec<u8>,
    manifest: String,
    metrics: String,
    health: Option<String>,
}

/// A small-but-real churn configuration (mirrors `tests/determinism.rs`).
fn quick_churn(algorithm: AlgorithmKind, seed: u64) -> ChurnConfig {
    let mut cfg = ChurnConfig::quick(algorithm, 150).with_seed(seed);
    cfg.warmup_secs = 150.0;
    cfg.measure_secs = 400.0;
    cfg
}

/// Runs a 2-algorithm × 3-seed churn sweep with every cell traced.
fn churn_sweep(jobs: usize) -> Observed {
    const ALGS: [AlgorithmKind; 2] = [AlgorithmKind::MinimumDepth, AlgorithmKind::Rost];
    let out = Sweep::with_jobs(jobs).run(ALGS.len(), 3, |cell| {
        let cfg = quick_churn(ALGS[cell.point], cell.seed);
        let (report, _metrics, trace) = traced_churn_cell("churn_det", cfg, cell.seed);
        CellOut {
            report,
            warnings: Vec::new(),
            trace: Some(trace),
            profile: None,
        }
    });
    Observed {
        reports: format!("{:?}", out.reports),
        jsonl: out.merged_jsonl(),
        manifest: out.merged_manifest("churn_det").to_json(),
        metrics: out.merged_metrics(),
        health: out.merged_health(),
    }
}

/// Runs a 3-seed streaming sweep with every cell traced.
fn streaming_sweep(jobs: usize) -> Observed {
    let out = Sweep::with_jobs(jobs).run(1, 3, |cell| {
        let cfg = StreamingConfig::paper(quick_churn(AlgorithmKind::MinimumDepth, cell.seed), 2);
        let (report, _metrics, trace) = traced_streaming_cell("streaming_det", cfg, cell.seed);
        CellOut {
            report,
            warnings: Vec::new(),
            trace: Some(trace),
            profile: None,
        }
    });
    Observed {
        reports: format!("{:?}", out.reports),
        jsonl: out.merged_jsonl(),
        manifest: out.merged_manifest("streaming_det").to_json(),
        metrics: out.merged_metrics(),
        health: out.merged_health(),
    }
}

/// Runs a 2-scenario × 2-seed chaos sweep with every cell traced.
fn chaos_sweep(jobs: usize) -> Observed {
    const SCENARIOS: [&str; 2] = ["correlated-failures", "flash-crowd"];
    let out = Sweep::with_jobs(jobs).run(SCENARIOS.len(), 2, |cell| {
        let mut churn = quick_churn(AlgorithmKind::Rost, cell.seed);
        churn.chaos = Scenario::by_name(SCENARIOS[cell.point], 180.0, 300.0);
        let cfg = StreamingConfig::paper(churn, 2);
        let (report, _metrics, trace) = traced_streaming_cell("chaos_det", cfg, cell.seed);
        CellOut {
            report,
            warnings: Vec::new(),
            trace: Some(trace),
            profile: None,
        }
    });
    Observed {
        reports: format!("{:?}", out.reports),
        jsonl: out.merged_jsonl(),
        manifest: out.merged_manifest("chaos_det").to_json(),
        metrics: out.merged_metrics(),
        health: out.merged_health(),
    }
}

/// Runs a 2-pathology-scenario × 2-seed sweep with every cell traced —
/// the link-pathology layer (Gilbert–Elliott bursts, capacity traces,
/// bufferbloat, mobile handover) must be as jobs-invariant as the
/// structural chaos actions.
fn burst_sweep(jobs: usize) -> Observed {
    const SCENARIOS: [&str; 2] = ["bursty-loss", "mobile-member"];
    let out = Sweep::with_jobs(jobs).run(SCENARIOS.len(), 2, |cell| {
        let mut churn = quick_churn(AlgorithmKind::Rost, cell.seed);
        churn.chaos = Scenario::by_name(SCENARIOS[cell.point], 180.0, 300.0);
        let cfg = StreamingConfig::paper(churn, 2);
        let (report, _metrics, trace) = traced_streaming_cell("burst_det", cfg, cell.seed);
        CellOut {
            report,
            warnings: Vec::new(),
            trace: Some(trace),
            profile: None,
        }
    });
    Observed {
        reports: format!("{:?}", out.reports),
        jsonl: out.merged_jsonl(),
        manifest: out.merged_manifest("burst_det").to_json(),
        metrics: out.merged_metrics(),
        health: out.merged_health(),
    }
}

/// Asserts one sweep family is byte-identical across worker counts, and
/// sanity-checks that the baseline actually produced traced content.
fn assert_jobs_invariant(name: &str, sweep: impl Fn(usize) -> Observed) {
    let baseline = sweep(1);
    assert!(
        !baseline.jsonl.is_empty(),
        "{name}: serial baseline produced no trace bytes"
    );
    assert!(
        baseline
            .health
            .as_deref()
            .is_some_and(|h| !h.is_empty()),
        "{name}: serial baseline produced no health records"
    );
    assert!(
        baseline.reports.len() > 2,
        "{name}: serial baseline produced no reports"
    );
    for jobs in [2usize, 8] {
        let parallel = sweep(jobs);
        assert_eq!(
            parallel, baseline,
            "{name}: jobs={jobs} diverged from the serial run"
        );
    }
}

#[test]
fn churn_sweep_is_byte_identical_across_jobs() {
    assert_jobs_invariant("churn", churn_sweep);
}

#[test]
fn streaming_sweep_is_byte_identical_across_jobs() {
    assert_jobs_invariant("streaming", streaming_sweep);
}

#[test]
fn chaos_sweep_is_byte_identical_across_jobs() {
    assert_jobs_invariant("chaos", chaos_sweep);
}

#[test]
fn burst_sweep_is_byte_identical_across_jobs() {
    assert_jobs_invariant("burst", burst_sweep);
}
