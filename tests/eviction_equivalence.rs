//! Old-vs-new eviction search equivalence wall.
//!
//! PR 8 replaced the relaxed ordered baselines' O(M) per-join layer scan
//! (`find_eviction`) with probes of per-depth ordered indices, and the
//! switch path's full-subtree restamp with incremental ±1 depth
//! maintenance. The pre-index search is embedded below, verbatim from the
//! last commit before the rewrite, and both deciders are driven through
//! identical randomized operation sequences — joins, rejoins, abrupt
//! departures, ROST switches, and bandwidth decay at mixed depths —
//! under both order keys on several fixed seeds. At every placement the
//! two must emit the same `JoinDecision`; after every switch the
//! incrementally maintained depths must match a from-scratch
//! recomputation. Any divergence is a bug in the index maintenance, not
//! a tolerable drift: every figure bin's byte-determinism depends on the
//! indexed search being observationally identical to the scan.

use rom_overlay::algorithms::{
    JoinContext, JoinDecision, RelaxedBandwidthOrdered, RelaxedTimeOrdered, TreeAlgorithm,
};
use rom_overlay::{
    IndexProximity, Location, MemberProfile, MulticastTree, NodeId, Proximity, TreeError,
    ZeroProximity,
};
use rom_sim::SimTime;

/// The pre-index eviction search and minimum-depth fallback, extracted
/// from `algorithms/ordered.rs` / `algorithms/mod.rs` before the indexed
/// rewrite with only visibility adjusted. Kept as a reference model: do
/// not "fix" or optimize this copy.
mod old_model {
    use super::*;

    /// The old `find_eviction`: an exhaustive high-to-low layer scan for
    /// the shallowest layer holding a member whose key is strictly below
    /// the joiner's, evicting that layer's weakest occupant (smallest id
    /// on key ties).
    pub fn find_eviction(
        tree: &MulticastTree,
        joiner: &MemberProfile,
        now: SimTime,
        key: impl Fn(&MemberProfile, SimTime) -> f64,
    ) -> Option<NodeId> {
        let joiner_key = key(joiner, now);
        for depth in 1..=tree.max_depth() {
            let mut weakest: Option<(f64, NodeId)> = None;
            for (cand, ix) in tree.layer_entries(depth) {
                let k = key(tree.profile_ix(ix), now);
                if k < joiner_key {
                    let better = match weakest {
                        None => true,
                        Some((wk, wid)) => k < wk || (k == wk && cand < wid),
                    };
                    if better {
                        weakest = Some((k, cand));
                    }
                }
            }
            if let Some((_, evict)) = weakest {
                return Some(evict);
            }
        }
        None
    }

    /// The old centralized fallback: `min_depth_parent` over an explicit
    /// candidate list materialized from the whole attached membership,
    /// exactly as the engine used to build it.
    pub fn min_depth_parent_all_attached(
        tree: &MulticastTree,
        joiner: &MemberProfile,
        proximity: &dyn Proximity,
    ) -> Option<NodeId> {
        let candidates: Vec<NodeId> = tree.attached_by_depth().collect();
        let mut best: Option<(usize, f64, NodeId)> = None;
        for &cand in &candidates {
            let Some(ix) = tree.index_of(cand) else {
                continue;
            };
            if !tree.has_free_slot_ix(ix) {
                continue;
            }
            let Some(depth) = tree.depth_ix(ix) else {
                continue;
            };
            let key_delay = || {
                let loc = tree.profile_ix(ix).location;
                proximity.delay_ms(joiner.location, loc)
            };
            match best {
                None => best = Some((depth, key_delay(), cand)),
                Some((bd, bdelay, bid)) => {
                    if depth < bd {
                        best = Some((depth, key_delay(), cand));
                    } else if depth == bd {
                        let delay = key_delay();
                        if delay < bdelay || (delay == bdelay && cand < bid) {
                            best = Some((depth, delay, cand));
                        }
                    }
                }
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// The old `ordered_select`: eviction first, min-depth fallback,
    /// reject when neither applies.
    pub fn select(
        tree: &MulticastTree,
        joiner: &MemberProfile,
        now: SimTime,
        key: impl Fn(&MemberProfile, SimTime) -> f64,
        proximity: &dyn Proximity,
    ) -> JoinDecision {
        if let Some(evict) = find_eviction(tree, joiner, now, key) {
            return JoinDecision::Replace { evict };
        }
        match min_depth_parent_all_attached(tree, joiner, proximity) {
            Some(parent) => JoinDecision::Attach { parent },
            None => JoinDecision::Reject,
        }
    }
}

/// Deterministic xorshift64* stream so each (seed, key) wall run is
/// reproducible without any external RNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy, Debug)]
enum KeyKind {
    Bandwidth,
    Age,
}

impl KeyKind {
    fn key(self, profile: &MemberProfile, now: SimTime) -> f64 {
        match self {
            KeyKind::Bandwidth => profile.bandwidth,
            KeyKind::Age => profile.age(now),
        }
    }

    fn algorithm(self) -> &'static dyn TreeAlgorithm {
        match self {
            KeyKind::Bandwidth => &RelaxedBandwidthOrdered,
            KeyKind::Age => &RelaxedTimeOrdered,
        }
    }
}

/// One engine-shaped wall run: the indexed decider and the embedded scan
/// must agree on every placement while the tree churns.
fn run_wall(seed: u64, kind: KeyKind, proximity: &dyn Proximity, ops: usize) {
    let source = MemberProfile::new(NodeId(0), 6.0, SimTime::ZERO, 1e12, Location(0));
    let mut tree = MulticastTree::new(source, 1.0);
    let mut rng = Rng::new(seed);
    let mut next_id = 1u64;
    let mut switches = 0usize;
    let mut decisions = 0usize;

    for step in 0..ops {
        let now = SimTime::from_secs(step as f64 * 0.5);
        match rng.below(10) {
            // Join a brand-new member (the dominant event).
            0..=4 => {
                // Quantized bandwidths and join offsets manufacture key
                // ties, so the smallest-id tie-break is exercised; join
                // times at or after `now` exercise the age clamp.
                let bw = rng.below(12) as f64 * 0.5;
                let join = now.as_secs() - rng.below(8) as f64 + 2.0;
                let profile = MemberProfile::new(
                    NodeId(next_id),
                    bw,
                    SimTime::from_secs(join),
                    1e6,
                    Location((next_id % 17) as u32),
                );
                next_id += 1;
                decisions += 1;
                place(&mut tree, &profile, now, kind, proximity, false);
            }
            // Rejoin an orphan root (preserved profile, so under time
            // ordering these are the joiners old enough to evict).
            5..=6 => {
                let orphans: Vec<NodeId> = tree.orphan_roots().collect();
                if orphans.is_empty() {
                    continue;
                }
                let orphan = orphans[rng.below(orphans.len() as u64) as usize];
                let profile = tree.profile(orphan).unwrap().clone();
                let has_children = tree.child_count(orphan) > 0;
                decisions += 1;
                rejoin(&mut tree, orphan, &profile, now, kind, proximity, has_children);
            }
            // Abrupt departure at a random position.
            7 => {
                let members: Vec<NodeId> =
                    tree.member_ids().filter(|&m| m != tree.root()).collect();
                if members.is_empty() {
                    continue;
                }
                let victim = members[rng.below(members.len() as u64) as usize];
                tree.remove(victim).unwrap();
            }
            // ROST-style switch of a random attached member.
            8 => {
                let attached: Vec<NodeId> = tree
                    .attached_by_depth()
                    .filter(|&m| m != tree.root())
                    .collect();
                if attached.is_empty() {
                    continue;
                }
                let child = attached[rng.below(attached.len() as u64) as usize];
                match tree.swap_with_parent(child, |p| p.bandwidth) {
                    Ok(_) => {
                        switches += 1;
                        assert_restamp_equivalence(&tree);
                    }
                    Err(TreeError::NoSwitchableParent(_))
                    | Err(TreeError::InsufficientCapacity(_)) => {}
                    Err(e) => panic!("unexpected switch error: {e}"),
                }
            }
            // Bandwidth decay (or recovery) with tail-first shedding.
            _ => {
                let members: Vec<NodeId> = tree.member_ids().collect();
                let victim = members[rng.below(members.len() as u64) as usize];
                if victim == tree.root() {
                    continue;
                }
                let bw = rng.below(10) as f64 * 0.5;
                tree.set_bandwidth(victim, bw).unwrap();
            }
        }
        tree.check_invariants()
            .unwrap_or_else(|v| panic!("seed {seed} {kind:?} step {step}: {v}"));
    }
    // The mix must actually exercise the interesting paths.
    assert!(switches > 0, "seed {seed} {kind:?}: no switch ever applied");
    assert!(decisions > ops / 3, "seed {seed} {kind:?}: too few placements");
}

/// Compares old and new deciders for one join, then applies the decision.
fn place(
    tree: &mut MulticastTree,
    joiner: &MemberProfile,
    now: SimTime,
    kind: KeyKind,
    proximity: &dyn Proximity,
    _rejoin: bool,
) {
    let old = old_model::select(tree, joiner, now, |p, t| kind.key(p, t), proximity);
    let ctx = JoinContext {
        tree,
        joiner,
        candidates: &[],
        now,
    };
    let new = kind.algorithm().select(&ctx, proximity);
    assert_eq!(old, new, "join decision diverged for {}", joiner.id);
    match new {
        JoinDecision::Attach { parent } => {
            tree.attach(joiner.clone(), parent).unwrap();
        }
        JoinDecision::Replace { evict } => {
            tree.replace(evict, joiner.clone(), |p| p.bandwidth).unwrap();
        }
        JoinDecision::Reject => {}
    }
}

/// Compares old and new deciders for one orphan rejoin (the engine's
/// split: childless orphans may usurp, subtree roots only min-depth
/// reattach), then applies the decision.
fn rejoin(
    tree: &mut MulticastTree,
    orphan: NodeId,
    profile: &MemberProfile,
    now: SimTime,
    kind: KeyKind,
    proximity: &dyn Proximity,
    has_children: bool,
) {
    let (old, new) = if has_children {
        let old = match old_model::min_depth_parent_all_attached(tree, profile, proximity) {
            Some(parent) => JoinDecision::Attach { parent },
            None => JoinDecision::Reject,
        };
        let new = match rom_overlay::algorithms::min_depth_parent_indexed(tree, profile, proximity)
        {
            Some(parent) => JoinDecision::Attach { parent },
            None => JoinDecision::Reject,
        };
        (old, new)
    } else {
        let old = old_model::select(tree, profile, now, |p, t| kind.key(p, t), proximity);
        let ctx = JoinContext {
            tree,
            joiner: profile,
            candidates: &[],
            now,
        };
        (old, kind.algorithm().select(&ctx, proximity))
    };
    assert_eq!(old, new, "rejoin decision diverged for {orphan}");
    match new {
        JoinDecision::Attach { parent } => {
            tree.reattach(orphan, parent).unwrap();
        }
        JoinDecision::Replace { evict } => {
            tree.usurp(evict, orphan, |p| p.bandwidth).unwrap();
        }
        JoinDecision::Reject => {}
    }
}

/// Restamp equivalence: every attached member's incrementally maintained
/// depth must equal a from-scratch recomputation (its distance to the
/// root along parent links). `check_invariants` separately re-derives the
/// layer, eviction, and free-slot indices from those depths.
fn assert_restamp_equivalence(tree: &MulticastTree) {
    for id in tree.attached_by_depth() {
        assert_eq!(
            tree.depth(id).unwrap(),
            tree.ancestors(id).len(),
            "incremental depth of {id} diverged from a from-scratch restamp"
        );
    }
}

#[test]
fn bandwidth_ordered_matches_old_scan_across_seeds() {
    for seed in [7, 42, 1337, 20260808] {
        run_wall(seed, KeyKind::Bandwidth, &IndexProximity, 400);
    }
}

#[test]
fn time_ordered_matches_old_scan_across_seeds() {
    for seed in [7, 42, 1337, 20260808] {
        run_wall(seed, KeyKind::Age, &IndexProximity, 400);
    }
}

#[test]
fn flat_proximity_exercises_the_id_tiebreak() {
    // With every delay equal, the min-depth fallback's (delay, id)
    // ordering degenerates to pure id order — the tie-break most
    // sensitive to iteration-order differences between the candidate
    // scan and the free-slot index.
    for seed in [3, 99, 4096] {
        run_wall(seed, KeyKind::Bandwidth, &ZeroProximity, 300);
        run_wall(seed, KeyKind::Age, &ZeroProximity, 300);
    }
}
