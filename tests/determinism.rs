//! Reproducibility: a single `u64` seed pins down every experiment
//! bit-for-bit, across both simulators and all algorithms.

use rom::engine::{AlgorithmKind, ChurnConfig, ChurnSim, StreamingConfig, StreamingSim};

fn quick(algorithm: AlgorithmKind, seed: u64) -> ChurnConfig {
    let mut cfg = ChurnConfig::quick(algorithm, 250);
    cfg.seed = seed;
    cfg.warmup_secs = 150.0;
    cfg.measure_secs = 400.0;
    cfg
}

#[test]
fn churn_reports_are_bitwise_reproducible() {
    for algorithm in AlgorithmKind::ALL {
        let a = ChurnSim::new(quick(algorithm, 7)).run();
        let b = ChurnSim::new(quick(algorithm, 7)).run();
        assert_eq!(a.disruption_events, b.disruption_events, "{algorithm}");
        assert_eq!(
            a.disruptions_per_lifetime.mean().to_bits(),
            b.disruptions_per_lifetime.mean().to_bits(),
            "{algorithm}"
        );
        assert_eq!(
            a.service_delay_ms.mean().to_bits(),
            b.service_delay_ms.mean().to_bits(),
            "{algorithm}"
        );
        assert_eq!(a.switches, b.switches, "{algorithm}");
        assert_eq!(a.evictions, b.evictions, "{algorithm}");
        assert_eq!(a.disruption_counts, b.disruption_counts, "{algorithm}");
    }
}

#[test]
fn different_seeds_explore_different_histories() {
    let a = ChurnSim::new(quick(AlgorithmKind::Rost, 1)).run();
    let b = ChurnSim::new(quick(AlgorithmKind::Rost, 2)).run();
    // Identical totals across all of these under different seeds would
    // mean the seed is being ignored somewhere.
    let same = (a.disruption_events == b.disruption_events) as u8
        + (a.switches == b.switches) as u8
        + (a.disruptions_per_lifetime.count() == b.disruptions_per_lifetime.count()) as u8;
    assert!(same < 3, "seeds 1 and 2 produced identical histories");
}

#[test]
fn streaming_reports_are_bitwise_reproducible() {
    let make = || {
        let mut churn = ChurnConfig::quick(AlgorithmKind::MinimumDepth, 300);
        churn.seed = 5;
        churn.warmup_secs = 150.0;
        churn.measure_secs = 400.0;
        StreamingConfig::paper(churn, 2)
    };
    let a = StreamingSim::new(make()).run();
    let b = StreamingSim::new(make()).run();
    assert_eq!(a.outages, b.outages);
    assert_eq!(a.packets_starved, b.packets_starved);
    assert_eq!(a.packets_repaired_on_time, b.packets_repaired_on_time);
    assert_eq!(
        a.starving_ratio_percent.mean().to_bits(),
        b.starving_ratio_percent.mean().to_bits()
    );
    // The whole distribution, not just the mean: every moment the summary
    // exposes must be bit-identical, and so must the underlying tree run.
    for (x, y) in [
        (a.starving_ratio_percent.min(), b.starving_ratio_percent.min()),
        (a.starving_ratio_percent.max(), b.starving_ratio_percent.max()),
        (
            a.starving_ratio_percent.std_dev(),
            b.starving_ratio_percent.std_dev(),
        ),
        (
            a.churn.service_delay_ms.mean(),
            b.churn.service_delay_ms.mean(),
        ),
    ] {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.churn.disruption_events, b.churn.disruption_events);
}

#[test]
fn cer_recovery_session_is_bitwise_reproducible() {
    use rom::cer::{
        find_mlc_group, AncestorRecord, MlcOptions, PartialTree, RecoveryGroup, RepairSession,
        StripePlan,
    };
    use rom::overlay::NodeId;
    use rom::sim::SimRng;

    // One full CER recovery pass — partial-tree reconstruction, MLC group
    // selection, distance ordering, stripe planning and the repair-chain
    // walk — must come out identical for the same seed.
    let run = || {
        let records: Vec<AncestorRecord> = (2u64..40)
            .map(|n| AncestorRecord {
                node: NodeId(n),
                // A comb: even nodes hang off NodeId(1), odd ones chain
                // one level deeper, giving MLC real correlations to avoid.
                ancestors: if n % 2 == 0 {
                    vec![NodeId(0), NodeId(1)]
                } else {
                    vec![NodeId(0), NodeId(1), NodeId(n - 1)]
                },
            })
            .collect();
        let partial = PartialTree::from_records(&records);
        let mut rng = SimRng::seed_from(42);
        let options = MlcOptions {
            exclude: vec![NodeId(0), NodeId(1)],
        };
        let chosen = find_mlc_group(&partial, 3, &options, &mut rng);
        // Deterministic synthetic distances stand in for the delay oracle.
        let with_distance: Vec<(NodeId, f64)> = chosen
            .iter()
            .map(|&n| (n, (n.0 % 7) as f64 * 3.5 + 1.0))
            .collect();
        let group = RecoveryGroup::ordered_by_distance(with_distance);
        let plan = StripePlan::plan_full_coverage(&[0.25, 0.4, 0.2]);
        let mut session =
            RepairSession::start(1234, group.clone()).expect("group is non-empty");
        // First two members NACK, the third serves.
        let mut walk = Vec::new();
        walk.push(session.current_target());
        walk.push(session.on_nack());
        session.on_served();
        (chosen, group, plan, walk, session.hops())
    };

    let (chosen_a, group_a, plan_a, walk_a, hops_a) = run();
    let (chosen_b, group_b, plan_b, walk_b, hops_b) = run();
    assert_eq!(chosen_a, chosen_b, "MLC selection must be seed-determined");
    assert_eq!(group_a, group_b);
    assert_eq!(walk_a, walk_b);
    assert_eq!(hops_a, hops_b);
    assert_eq!(plan_a.segments().len(), plan_b.segments().len());
    for (sa, sb) in plan_a.segments().iter().zip(plan_b.segments()) {
        assert_eq!(sa.member_index, sb.member_index);
        assert_eq!((sa.lo, sa.hi), (sb.lo, sb.hi));
        assert_eq!(sa.rate_fraction.to_bits(), sb.rate_fraction.to_bits());
    }
    assert_eq!(plan_a.coverage().to_bits(), plan_b.coverage().to_bits());
}
