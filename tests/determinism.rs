//! Reproducibility: a single `u64` seed pins down every experiment
//! bit-for-bit, across both simulators and all algorithms.

use rom::engine::{AlgorithmKind, ChurnConfig, ChurnSim, StreamingConfig, StreamingSim};

fn quick(algorithm: AlgorithmKind, seed: u64) -> ChurnConfig {
    let mut cfg = ChurnConfig::quick(algorithm, 250);
    cfg.seed = seed;
    cfg.warmup_secs = 150.0;
    cfg.measure_secs = 400.0;
    cfg
}

#[test]
fn churn_reports_are_bitwise_reproducible() {
    for algorithm in AlgorithmKind::ALL {
        let a = ChurnSim::new(quick(algorithm, 7)).run();
        let b = ChurnSim::new(quick(algorithm, 7)).run();
        assert_eq!(a.disruption_events, b.disruption_events, "{algorithm}");
        assert_eq!(
            a.disruptions_per_lifetime.mean().to_bits(),
            b.disruptions_per_lifetime.mean().to_bits(),
            "{algorithm}"
        );
        assert_eq!(
            a.service_delay_ms.mean().to_bits(),
            b.service_delay_ms.mean().to_bits(),
            "{algorithm}"
        );
        assert_eq!(a.switches, b.switches, "{algorithm}");
        assert_eq!(a.evictions, b.evictions, "{algorithm}");
        assert_eq!(a.disruption_counts, b.disruption_counts, "{algorithm}");
    }
}

#[test]
fn different_seeds_explore_different_histories() {
    let a = ChurnSim::new(quick(AlgorithmKind::Rost, 1)).run();
    let b = ChurnSim::new(quick(AlgorithmKind::Rost, 2)).run();
    // Identical totals across all of these under different seeds would
    // mean the seed is being ignored somewhere.
    let same = (a.disruption_events == b.disruption_events) as u8
        + (a.switches == b.switches) as u8
        + (a.disruptions_per_lifetime.count() == b.disruptions_per_lifetime.count()) as u8;
    assert!(same < 3, "seeds 1 and 2 produced identical histories");
}

#[test]
fn streaming_reports_are_bitwise_reproducible() {
    let make = || {
        let mut churn = ChurnConfig::quick(AlgorithmKind::MinimumDepth, 300);
        churn.seed = 5;
        churn.warmup_secs = 150.0;
        churn.measure_secs = 400.0;
        StreamingConfig::paper(churn, 2)
    };
    let a = StreamingSim::new(make()).run();
    let b = StreamingSim::new(make()).run();
    assert_eq!(a.outages, b.outages);
    assert_eq!(a.packets_starved, b.packets_starved);
    assert_eq!(a.packets_repaired_on_time, b.packets_repaired_on_time);
    assert_eq!(
        a.starving_ratio_percent.mean().to_bits(),
        b.starving_ratio_percent.mean().to_bits()
    );
}
