//! Old-vs-new tree representation equivalence wall.
//!
//! PR 5 replaced the `BTreeMap<NodeId, TreeSlot>` core of
//! `rom_overlay::MulticastTree` with a dense slab arena. The pre-arena
//! implementation is embedded below, extracted from git history, and both
//! representations are driven through identical randomized operation
//! sequences. After every operation, every public observation — membership,
//! parent links, children order, depths, layer order, descendants walks,
//! orphan roots, subtree sizes, overlay paths, cached counters, and the
//! structured outcomes of each mutation — must agree exactly. Any
//! divergence is a bug in the arena rewrite, not a tolerable drift: the
//! determinism walls depend on the two cores being observationally
//! indistinguishable.

use proptest::prelude::*;
use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId, TreeError};
use rom_sim::SimTime;

/// The pre-arena `MulticastTree` (`BTreeMap` slots keyed by id), verbatim
/// from the last commit before the slab rewrite with only the `crate::`
/// paths rewritten to `rom_overlay::` imports. Kept as a reference model:
/// do not "fix" or optimize this copy.
#[allow(dead_code)]
mod old_model {
    use std::collections::{BTreeMap, BTreeSet};

    use rom_overlay::{MemberProfile, NodeId, TreeError};

    /// Local stand-in for `rom_overlay::InvariantViolation`, whose
    /// constructor is crate-private; the wall only checks `== Ok(())`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct InvariantViolation(String);

    impl InvariantViolation {
        fn new(description: String) -> Self {
            InvariantViolation(description)
        }
    }


#[derive(Debug, Clone)]
struct TreeSlot {
    profile: MemberProfile,
    capacity: usize,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: usize,
    attached: bool,
}

/// What [`MulticastTree::remove`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct RemovedMember {
    /// The departed member's profile.
    pub profile: MemberProfile,
    /// Children of the departed member, now orphan subtree roots that must
    /// rejoin the tree.
    pub orphaned_children: Vec<NodeId>,
    /// All descendants of the departed member (the members that experience
    /// a streaming disruption when the departure is abrupt).
    pub affected_descendants: Vec<NodeId>,
}

/// What [`MulticastTree::replace`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaceOutcome {
    /// Members that must rejoin: the evictee itself plus any of its former
    /// children that did not fit under the newcomer.
    pub displaced: Vec<NodeId>,
    /// Former children of the evictee now served by the newcomer.
    pub adopted: Vec<NodeId>,
}

/// What [`MulticastTree::swap_with_parent`] hands back.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchRecord {
    /// The node that moved up.
    pub promoted: NodeId,
    /// The former parent that moved down.
    pub demoted: NodeId,
    /// Number of members whose parent changed — the paper's ≈ 2d + 1
    /// protocol-overhead unit for one switch.
    pub parent_changes: usize,
    /// The members whose parent pointer changed (the promoted node, the
    /// demoted node, the siblings that followed, and the grandchildren the
    /// demoted node kept). Length equals `parent_changes`.
    pub reparented: Vec<NodeId>,
    /// Former children of the promoted node that were reconnected to it
    /// (they did not fit under the demoted node).
    pub spilled_to_promoted: Vec<NodeId>,
    /// Members that fit nowhere and must rejoin (only possible when the
    /// promoted node's capacity shrank concurrently; normally empty).
    pub displaced: Vec<NodeId>,
}

/// A single-source overlay multicast tree with degree constraints.
///
/// # Examples
///
/// ```
/// use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId};
/// use rom_sim::SimTime;
///
/// let source = MemberProfile::new(NodeId::SOURCE, 100.0, SimTime::ZERO, 1e9, Location(0));
/// let mut tree = MulticastTree::new(source, 1.0);
///
/// let m = MemberProfile::new(NodeId(1), 2.0, SimTime::ZERO, 600.0, Location(1));
/// tree.attach(m, NodeId::SOURCE)?;
/// assert_eq!(tree.depth(NodeId(1)), Some(1));
/// assert_eq!(tree.attached_count(), 2);
/// # Ok::<(), rom_overlay::TreeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MulticastTree {
    stream_rate: f64,
    root: NodeId,
    nodes: BTreeMap<NodeId, TreeSlot>,
    /// Attached members bucketed by depth; `BTreeSet` keeps iteration
    /// deterministic.
    depth_index: Vec<BTreeSet<NodeId>>,
    orphan_roots: BTreeSet<NodeId>,
}

impl MulticastTree {
    /// Creates a tree containing only the multicast source.
    ///
    /// # Panics
    ///
    /// Panics if `stream_rate` is not positive.
    #[must_use]
    pub fn new(source: MemberProfile, stream_rate: f64) -> Self {
        assert!(stream_rate > 0.0, "stream rate must be positive");
        let root = source.id;
        let capacity = source.out_capacity(stream_rate);
        let mut nodes = BTreeMap::new();
        nodes.insert(
            root,
            TreeSlot {
                profile: source,
                capacity,
                parent: None,
                children: Vec::new(),
                depth: 0,
                attached: true,
            },
        );
        let mut depth_index = vec![BTreeSet::new()];
        depth_index[0].insert(root);
        MulticastTree {
            stream_rate,
            root,
            nodes,
            depth_index,
            orphan_roots: BTreeSet::new(),
        }
    }

    /// The multicast source.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The stream rate capacities are measured against.
    #[must_use]
    pub fn stream_rate(&self) -> f64 {
        self.stream_rate
    }

    /// Total members, attached or not (including the source).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the source is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of members currently connected to the source.
    #[must_use]
    pub fn attached_count(&self) -> usize {
        self.depth_index.iter().map(BTreeSet::len).sum()
    }

    /// True if `id` is present (attached or orphaned).
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// True if `id` is present and connected to the source.
    #[must_use]
    pub fn is_attached(&self, id: NodeId) -> bool {
        self.nodes.get(&id).is_some_and(|s| s.attached)
    }

    /// The member's profile, if present.
    #[must_use]
    pub fn profile(&self, id: NodeId) -> Option<&MemberProfile> {
        self.nodes.get(&id).map(|s| &s.profile)
    }

    /// The member's parent; `None` for the root, orphan roots and unknown
    /// ids.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes.get(&id).and_then(|s| s.parent)
    }

    /// The member's children (empty slice for unknown ids).
    #[must_use]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        self.nodes.get(&id).map_or(&[], |s| &s.children)
    }

    /// The member's depth below the source (root = 0); `None` when the
    /// member is detached or unknown.
    #[must_use]
    pub fn depth(&self, id: NodeId) -> Option<usize> {
        let slot = self.nodes.get(&id)?;
        slot.attached.then_some(slot.depth)
    }

    /// The member's out-degree capacity.
    #[must_use]
    pub fn capacity(&self, id: NodeId) -> usize {
        self.nodes.get(&id).map_or(0, |s| s.capacity)
    }

    /// Unused forwarding slots of `id` (0 for unknown ids).
    #[must_use]
    pub fn free_slots(&self, id: NodeId) -> usize {
        self.nodes
            .get(&id)
            .map_or(0, |s| s.capacity.saturating_sub(s.children.len()))
    }

    /// True if `id` can accept one more child.
    #[must_use]
    pub fn has_free_slot(&self, id: NodeId) -> bool {
        self.free_slots(id) > 0
    }

    /// Current orphan subtree roots, in id order.
    pub fn orphan_roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.orphan_roots.iter().copied()
    }

    /// All member ids, attached and detached, in arbitrary order.
    pub fn member_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Attached members in breadth-first (depth, then id) order — the
    /// "search from high to low layers" order of the relaxed ordered
    /// algorithms.
    pub fn attached_by_depth(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.depth_index
            .iter()
            .flat_map(|layer| layer.iter().copied())
    }

    /// The attached members at exactly `depth`.
    pub fn layer(&self, depth: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.depth_index
            .get(depth)
            .into_iter()
            .flat_map(|layer| layer.iter().copied())
    }

    /// The deepest attached layer index.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.depth_index
            .iter()
            .rposition(|layer| !layer.is_empty())
            .unwrap_or(0)
    }

    /// Ancestors of `id` from its parent up to the subtree root (the source
    /// for attached members). Empty for roots and unknown ids.
    #[must_use]
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// True if `ancestor` lies on the path from `id` to its subtree root.
    #[must_use]
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> bool {
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// All descendants of `id` (excluding `id`), breadth-first.
    #[must_use]
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut frontier = vec![id];
        while let Some(n) = frontier.pop() {
            for &c in self.children(n) {
                out.push(c);
                frontier.push(c);
            }
        }
        out
    }

    /// Number of members in the subtree rooted at `id`, including `id`
    /// itself (0 for unknown ids).
    #[must_use]
    pub fn subtree_size(&self, id: NodeId) -> usize {
        if self.contains(id) {
            1 + self.descendants(id).len()
        } else {
            0
        }
    }

    /// The overlay path from the source to `id` (inclusive), or `None` when
    /// `id` is detached or unknown.
    #[must_use]
    pub fn overlay_path(&self, id: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_attached(id) {
            return None;
        }
        let mut path = self.ancestors(id);
        path.reverse();
        path.push(id);
        Some(path)
    }

    fn index_insert(&mut self, id: NodeId, depth: usize) {
        if self.depth_index.len() <= depth {
            self.depth_index.resize_with(depth + 1, BTreeSet::new);
        }
        self.depth_index[depth].insert(id);
    }

    fn index_remove(&mut self, id: NodeId, depth: usize) {
        if let Some(layer) = self.depth_index.get_mut(depth) {
            layer.remove(&id);
        }
    }

    /// Marks the subtree rooted at `id` attached/detached and rebuilds its
    /// depths starting from `base_depth`. Returns the subtree size.
    fn restamp_subtree(&mut self, id: NodeId, base_depth: usize, attached: bool) -> usize {
        let mut count = 0;
        let mut frontier = vec![(id, base_depth)];
        while let Some((n, d)) = frontier.pop() {
            count += 1;
            let slot = self.nodes.get_mut(&n).expect("subtree member exists");
            let was_attached = slot.attached;
            let old_depth = slot.depth;
            slot.attached = attached;
            slot.depth = d;
            let children = slot.children.clone();
            if was_attached {
                self.index_remove(n, old_depth);
            }
            if attached {
                self.index_insert(n, d);
            }
            for c in children {
                frontier.push((c, d + 1));
            }
        }
        count
    }

    /// Attaches a brand-new member as a leaf under `parent`.
    ///
    /// # Errors
    ///
    /// [`TreeError::DuplicateMember`] if the id is already present,
    /// [`TreeError::UnknownMember`] / [`TreeError::ParentDetached`] /
    /// [`TreeError::ParentFull`] if the parent cannot serve it.
    pub fn attach(&mut self, profile: MemberProfile, parent: NodeId) -> Result<(), TreeError> {
        let id = profile.id;
        if self.contains(id) {
            return Err(TreeError::DuplicateMember(id));
        }
        let parent_slot = self
            .nodes
            .get(&parent)
            .ok_or(TreeError::UnknownMember(parent))?;
        if !parent_slot.attached {
            return Err(TreeError::ParentDetached(parent));
        }
        if parent_slot.children.len() >= parent_slot.capacity {
            return Err(TreeError::ParentFull(parent));
        }
        let depth = parent_slot.depth + 1;
        let capacity = profile.out_capacity(self.stream_rate);
        self.nodes
            .get_mut(&parent)
            .expect("checked")
            .children
            .push(id);
        self.nodes.insert(
            id,
            TreeSlot {
                profile,
                capacity,
                parent: Some(parent),
                children: Vec::new(),
                depth,
                attached: true,
            },
        );
        self.index_insert(id, depth);
        Ok(())
    }

    /// Reattaches the orphan subtree rooted at `orphan` under `parent`.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAnOrphan`] if `orphan` is not currently an orphan
    /// subtree root, [`TreeError::WouldCycle`] if `parent` lies inside the
    /// orphan's own subtree, plus the same parent errors as
    /// [`attach`](Self::attach).
    pub fn reattach(&mut self, orphan: NodeId, parent: NodeId) -> Result<(), TreeError> {
        if !self.orphan_roots.contains(&orphan) {
            return Err(TreeError::NotAnOrphan(orphan));
        }
        let parent_slot = self
            .nodes
            .get(&parent)
            .ok_or(TreeError::UnknownMember(parent))?;
        if !parent_slot.attached {
            // Covers both detached parents and parents inside this orphan's
            // own subtree (which are necessarily detached).
            if parent == orphan || self.is_ancestor(orphan, parent) {
                return Err(TreeError::WouldCycle(parent));
            }
            return Err(TreeError::ParentDetached(parent));
        }
        if parent_slot.children.len() >= parent_slot.capacity {
            return Err(TreeError::ParentFull(parent));
        }
        let base_depth = parent_slot.depth + 1;
        self.nodes
            .get_mut(&parent)
            .expect("checked")
            .children
            .push(orphan);
        self.nodes.get_mut(&orphan).expect("orphan exists").parent = Some(parent);
        self.orphan_roots.remove(&orphan);
        self.restamp_subtree(orphan, base_depth, true);
        Ok(())
    }

    /// Removes a member (abrupt departure). Its children become orphan
    /// subtree roots; the returned record lists them along with every
    /// affected descendant.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] for the source,
    /// [`TreeError::UnknownMember`] otherwise.
    pub fn remove(&mut self, id: NodeId) -> Result<RemovedMember, TreeError> {
        if id == self.root {
            return Err(TreeError::RootImmovable);
        }
        if !self.contains(id) {
            return Err(TreeError::UnknownMember(id));
        }
        let affected_descendants = self.descendants(id);
        let slot = self.nodes.get(&id).expect("checked").clone();

        // Detach from the parent (if any).
        if let Some(p) = slot.parent {
            let siblings = &mut self.nodes.get_mut(&p).expect("parent exists").children;
            siblings.retain(|&c| c != id);
        }
        if slot.attached {
            self.index_remove(id, slot.depth);
        }
        self.orphan_roots.remove(&id);

        // Children become orphan roots; their subtrees go detached.
        let orphaned_children = slot.children.clone();
        for &c in &orphaned_children {
            self.nodes.get_mut(&c).expect("child exists").parent = None;
            self.orphan_roots.insert(c);
            self.restamp_subtree(c, 0, false);
        }

        self.nodes.remove(&id);
        Ok(RemovedMember {
            profile: slot.profile,
            orphaned_children,
            affected_descendants,
        })
    }

    /// A newcomer takes over `evict`'s position (relaxed ordered
    /// algorithms, §5): it inherits the evictee's parent and as many of the
    /// evictee's children as its capacity allows, preferring to keep the
    /// children ranked highest by `keep_priority`. The evictee and any
    /// overflow children become orphan roots listed in the outcome.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] if `evict` is the source,
    /// [`TreeError::DuplicateMember`] if the newcomer is already present,
    /// [`TreeError::UnknownMember`] if the evictee is absent or detached.
    pub fn replace(
        &mut self,
        evict: NodeId,
        newcomer: MemberProfile,
        keep_priority: impl Fn(&MemberProfile) -> f64,
    ) -> Result<ReplaceOutcome, TreeError> {
        if evict == self.root {
            return Err(TreeError::RootImmovable);
        }
        if self.contains(newcomer.id) {
            return Err(TreeError::DuplicateMember(newcomer.id));
        }
        let evict_slot = self
            .nodes
            .get(&evict)
            .ok_or(TreeError::UnknownMember(evict))?;
        if !evict_slot.attached {
            return Err(TreeError::UnknownMember(evict));
        }
        let parent = evict_slot.parent.expect("attached non-root has a parent");
        let depth = evict_slot.depth;
        let mut former_children = evict_slot.children.clone();

        let new_id = newcomer.id;
        let new_capacity = newcomer.out_capacity(self.stream_rate);

        // Swap the parent's child pointer.
        let siblings = &mut self.nodes.get_mut(&parent).expect("parent exists").children;
        let pos = siblings.iter().position(|&c| c == evict).expect("linked");
        siblings[pos] = new_id;

        // Rank the evictee's children: highest priority kept.
        former_children.sort_by(|a, b| {
            let pa = keep_priority(&self.nodes[a].profile);
            let pb = keep_priority(&self.nodes[b].profile);
            pb.total_cmp(&pa).then_with(|| a.cmp(b))
        });
        let adopted: Vec<NodeId> = former_children.iter().copied().take(new_capacity).collect();
        let overflow: Vec<NodeId> = former_children.iter().copied().skip(new_capacity).collect();

        // Install the newcomer.
        self.nodes.insert(
            new_id,
            TreeSlot {
                profile: newcomer,
                capacity: new_capacity,
                parent: Some(parent),
                children: adopted.clone(),
                depth,
                attached: true,
            },
        );
        self.index_insert(new_id, depth);
        for &c in &adopted {
            self.nodes.get_mut(&c).expect("child exists").parent = Some(new_id);
        }
        // Depths below the adopted children are unchanged (same level).

        // Evictee becomes a childless orphan root.
        let evict_slot = self.nodes.get_mut(&evict).expect("checked");
        evict_slot.parent = None;
        evict_slot.children.clear();
        evict_slot.attached = false;
        self.index_remove(evict, depth);
        self.orphan_roots.insert(evict);

        // Overflow children become orphan subtree roots.
        for &c in &overflow {
            self.nodes.get_mut(&c).expect("child exists").parent = None;
            self.orphan_roots.insert(c);
            self.restamp_subtree(c, 0, false);
        }

        let mut displaced = vec![evict];
        displaced.extend(overflow);
        Ok(ReplaceOutcome { displaced, adopted })
    }

    /// Like [`replace`](Self::replace), but the usurper is an existing
    /// orphan subtree root rejoining the tree (relaxed ordered algorithms
    /// apply the same eviction rule to rejoins as to joins, §5). The
    /// usurper keeps its own children; the evictee's children are adopted
    /// only into the usurper's *remaining* capacity, ranked by
    /// `keep_priority`.
    ///
    /// # Errors
    ///
    /// [`TreeError::NotAnOrphan`] if `usurper` is not an orphan subtree
    /// root, plus the same errors as [`replace`](Self::replace).
    pub fn usurp(
        &mut self,
        evict: NodeId,
        usurper: NodeId,
        keep_priority: impl Fn(&MemberProfile) -> f64,
    ) -> Result<ReplaceOutcome, TreeError> {
        if evict == self.root {
            return Err(TreeError::RootImmovable);
        }
        if !self.orphan_roots.contains(&usurper) {
            return Err(TreeError::NotAnOrphan(usurper));
        }
        let evict_slot = self
            .nodes
            .get(&evict)
            .ok_or(TreeError::UnknownMember(evict))?;
        if !evict_slot.attached {
            return Err(TreeError::UnknownMember(evict));
        }
        let parent = evict_slot.parent.expect("attached non-root has a parent");
        let depth = evict_slot.depth;
        let mut former_children = evict_slot.children.clone();

        let usurper_slot = &self.nodes[&usurper];
        let spare = usurper_slot
            .capacity
            .saturating_sub(usurper_slot.children.len());

        // Swap the parent's child pointer.
        let siblings = &mut self.nodes.get_mut(&parent).expect("parent exists").children;
        let pos = siblings.iter().position(|&c| c == evict).expect("linked");
        siblings[pos] = usurper;

        former_children.sort_by(|a, b| {
            let pa = keep_priority(&self.nodes[a].profile);
            let pb = keep_priority(&self.nodes[b].profile);
            pb.total_cmp(&pa).then_with(|| a.cmp(b))
        });
        let adopted: Vec<NodeId> = former_children.iter().copied().take(spare).collect();
        let overflow: Vec<NodeId> = former_children.iter().copied().skip(spare).collect();

        {
            let u = self.nodes.get_mut(&usurper).expect("checked");
            u.parent = Some(parent);
            u.children.extend(adopted.iter().copied());
        }
        self.orphan_roots.remove(&usurper);
        for &c in &adopted {
            self.nodes.get_mut(&c).expect("child exists").parent = Some(usurper);
        }

        // Evictee becomes a childless orphan root.
        {
            let e = self.nodes.get_mut(&evict).expect("checked");
            e.parent = None;
            e.children.clear();
            e.attached = false;
        }
        self.index_remove(evict, depth);
        self.orphan_roots.insert(evict);

        for &c in &overflow {
            self.nodes.get_mut(&c).expect("child exists").parent = None;
            self.orphan_roots.insert(c);
            self.restamp_subtree(c, 0, false);
        }

        // The usurper's whole subtree (its old children plus the adopted
        // ones) becomes attached at the evictee's former depth.
        self.restamp_subtree(usurper, depth, true);

        let mut displaced = vec![evict];
        displaced.extend(overflow);
        Ok(ReplaceOutcome { displaced, adopted })
    }

    /// ROST's switching operation (§3.3, Fig. 2): `child` exchanges
    /// positions with its parent. The promoted child adopts its former
    /// siblings plus the demoted parent; the demoted parent keeps as many
    /// of the child's former children as fit, spilling the rest — highest
    /// `priority` first, as the paper prescribes — into the promoted
    /// node's spare slots.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownMember`] if `child` is absent,
    /// [`TreeError::RootImmovable`] if `child` is the source,
    /// [`TreeError::NoSwitchableParent`] if `child` is detached, an orphan
    /// root, or a direct child of the source with no non-root parent.
    pub fn swap_with_parent(
        &mut self,
        child: NodeId,
        priority: impl Fn(&MemberProfile) -> f64,
    ) -> Result<SwitchRecord, TreeError> {
        if child == self.root {
            return Err(TreeError::RootImmovable);
        }
        let child_slot = self
            .nodes
            .get(&child)
            .ok_or(TreeError::UnknownMember(child))?;
        if !child_slot.attached {
            return Err(TreeError::NoSwitchableParent(child));
        }
        let parent = child_slot
            .parent
            .ok_or(TreeError::NoSwitchableParent(child))?;
        if parent == self.root {
            return Err(TreeError::NoSwitchableParent(child));
        }
        let child_capacity = child_slot.capacity;
        let child_children = child_slot.children.clone();
        let parent_slot = &self.nodes[&parent];
        let grandparent = parent_slot
            .parent
            .expect("attached non-root parent has a parent");
        let parent_capacity = parent_slot.capacity;
        let parent_depth = parent_slot.depth;
        // Former siblings of the child (they will follow the promoted node).
        let siblings: Vec<NodeId> = parent_slot
            .children
            .iter()
            .copied()
            .filter(|&c| c != child)
            .collect();

        if child_capacity == 0 {
            // The child cannot serve even the demoted parent.
            return Err(TreeError::InsufficientCapacity(child));
        }

        // The promoted node's new children: former siblings + the demoted
        // parent. Under ROST's bandwidth guard (child bw ≥ parent bw) all
        // siblings fit, because |siblings| + 1 ≤ parent capacity ≤ child
        // capacity; without the guard the lowest-priority siblings are
        // displaced to keep the tree legal.
        let mut ranked_siblings = siblings.clone();
        ranked_siblings.sort_by(|a, b| {
            let pa = priority(&self.nodes[a].profile);
            let pb = priority(&self.nodes[b].profile);
            pb.total_cmp(&pa).then_with(|| a.cmp(b))
        });
        let sibling_keep = ranked_siblings.len().min(child_capacity - 1);
        let followed: Vec<NodeId> = ranked_siblings[..sibling_keep].to_vec();
        let displaced_siblings: Vec<NodeId> = ranked_siblings[sibling_keep..].to_vec();
        let mut promoted_children: Vec<NodeId> = followed.clone();
        promoted_children.push(parent);

        // Distribute the child's former children: the demoted parent keeps
        // the lowest-priority ones, the highest-priority spill to the
        // promoted node's spare slots (paper: "chooses f, the node with the
        // largest BTP, and reconnects to node b").
        let mut ranked = child_children.clone();
        ranked.sort_by(|a, b| {
            let pa = priority(&self.nodes[a].profile);
            let pb = priority(&self.nodes[b].profile);
            pb.total_cmp(&pa).then_with(|| a.cmp(b))
        });
        let keep_count = ranked.len().min(parent_capacity);
        let spill_count = ranked.len() - keep_count;
        let spilled: Vec<NodeId> = ranked[..spill_count].to_vec();
        let kept: Vec<NodeId> = ranked[spill_count..].to_vec();

        let spare = child_capacity.saturating_sub(promoted_children.len());
        let (to_promoted, mut displaced): (Vec<NodeId>, Vec<NodeId>) = if spilled.len() <= spare {
            (spilled, Vec::new())
        } else {
            let (a, b) = spilled.split_at(spare);
            (a.to_vec(), b.to_vec())
        };
        promoted_children.extend(to_promoted.iter().copied());
        displaced.extend(displaced_siblings.iter().copied());

        // Count parent-pointer changes before surgery: the promoted child,
        // the demoted parent, every sibling that followed the promotion,
        // and every former child of the promoted node that stays with the
        // demoted parent. Spilled nodes keep their parent (the promoted
        // node) and displaced nodes are counted by the rejoin they
        // trigger, not here.
        let parent_changes = 2 + followed.len() + kept.len();
        let mut reparented = vec![child, parent];
        reparented.extend(followed.iter().copied());
        reparented.extend(kept.iter().copied());

        // --- pointer surgery ---
        let gp_children = &mut self
            .nodes
            .get_mut(&grandparent)
            .expect("grandparent exists")
            .children;
        let pos = gp_children
            .iter()
            .position(|&c| c == parent)
            .expect("linked");
        gp_children[pos] = child;

        {
            let child_slot = self.nodes.get_mut(&child).expect("exists");
            child_slot.parent = Some(grandparent);
            child_slot.children = promoted_children.clone();
        }
        {
            let parent_slot = self.nodes.get_mut(&parent).expect("exists");
            parent_slot.parent = Some(child);
            parent_slot.children = kept.clone();
        }
        for &s in &followed {
            self.nodes.get_mut(&s).expect("exists").parent = Some(child);
        }
        for &k in &kept {
            self.nodes.get_mut(&k).expect("exists").parent = Some(parent);
        }
        for &t in &to_promoted {
            self.nodes.get_mut(&t).expect("exists").parent = Some(child);
        }
        for &d in &displaced {
            self.nodes.get_mut(&d).expect("exists").parent = None;
            self.orphan_roots.insert(d);
            self.restamp_subtree(d, 0, false);
        }

        // Depths: everything under the promoted child may have shifted.
        self.restamp_subtree(child, parent_depth, true);

        Ok(SwitchRecord {
            promoted: child,
            demoted: parent,
            parent_changes,
            reparented,
            spilled_to_promoted: to_promoted,
            displaced,
        })
    }

    /// Changes `id`'s outbound bandwidth in place (access-link
    /// degradation). The member's out-degree capacity is recomputed from
    /// the new bandwidth; if it now serves more children than it can
    /// afford, the most recently adopted children are detached into
    /// orphan subtree roots (the same recovery path an abrupt departure
    /// triggers) and returned, in detachment order.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownMember`] if `id` is not in the tree.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is negative or not finite.
    pub fn set_bandwidth(&mut self, id: NodeId, bandwidth: f64) -> Result<Vec<NodeId>, TreeError> {
        assert!(
            bandwidth >= 0.0 && bandwidth.is_finite(),
            "bandwidth must be finite and non-negative"
        );
        let slot = self.nodes.get_mut(&id).ok_or(TreeError::UnknownMember(id))?;
        slot.profile.bandwidth = bandwidth;
        slot.capacity = slot.profile.out_capacity(self.stream_rate);
        let mut shed = Vec::new();
        while slot.children.len() > slot.capacity {
            if let Some(child) = slot.children.pop() {
                shed.push(child);
            } else {
                break;
            }
        }
        for &c in &shed {
            self.nodes.get_mut(&c).expect("child exists").parent = None;
            self.orphan_roots.insert(c);
            self.restamp_subtree(c, 0, false);
        }
        Ok(shed)
    }

    /// Mean out-degree of attached members that have at least one child —
    /// the `d` of the paper's `2d + 1` switch-overhead estimate.
    #[must_use]
    pub fn mean_internal_out_degree(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for slot in self.nodes.values() {
            if slot.attached && !slot.children.is_empty() {
                total += slot.children.len();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Test helper: forcibly detaches `id` (with its subtree) into orphan
    /// state without removing any member.
    #[cfg(test)]
    pub(crate) fn remove_parent_link_for_test(&mut self, id: NodeId) {
        let parent = self.nodes[&id].parent.expect("test node has a parent");
        self.nodes
            .get_mut(&parent)
            .expect("parent exists")
            .children
            .retain(|&c| c != id);
        self.nodes.get_mut(&id).expect("exists").parent = None;
        self.orphan_roots.insert(id);
        self.restamp_subtree(id, 0, false);
    }

    /// Verifies every structural invariant; used by tests and property
    /// tests after each mutation.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |msg: String| Err(InvariantViolation::new(msg));

        // Root sanity.
        let root_slot = match self.nodes.get(&self.root) {
            Some(s) => s,
            None => return fail("root is missing".into()),
        };
        if !root_slot.attached || root_slot.depth != 0 || root_slot.parent.is_some() {
            return fail("root must be attached at depth 0 with no parent".into());
        }

        let mut reachable = 0usize;
        for (&id, slot) in &self.nodes {
            // Degree constraint.
            if slot.children.len() > slot.capacity {
                return fail(format!(
                    "{id} has {} children but capacity {}",
                    slot.children.len(),
                    slot.capacity
                ));
            }
            // Parent/child pointer symmetry.
            if let Some(p) = slot.parent {
                let Some(pslot) = self.nodes.get(&p) else {
                    return fail(format!("{id} points at missing parent {p}"));
                };
                if !pslot.children.contains(&id) {
                    return fail(format!("{p} does not list child {id}"));
                }
                if slot.attached {
                    if !pslot.attached {
                        return fail(format!("attached {id} under detached parent {p}"));
                    }
                    if slot.depth != pslot.depth + 1 {
                        return fail(format!(
                            "{id} depth {} but parent depth {}",
                            slot.depth, pslot.depth
                        ));
                    }
                }
            } else if id != self.root && !self.orphan_roots.contains(&id) {
                return fail(format!("{id} has no parent but is not an orphan root"));
            }
            for &c in &slot.children {
                match self.nodes.get(&c) {
                    Some(cslot) if cslot.parent == Some(id) => {}
                    Some(_) => return fail(format!("{c} does not point back at parent {id}")),
                    None => return fail(format!("{id} lists missing child {c}")),
                }
            }
            // Depth-index agreement.
            if slot.attached {
                reachable += 1;
                let in_index = self
                    .depth_index
                    .get(slot.depth)
                    .is_some_and(|l| l.contains(&id));
                if !in_index {
                    return fail(format!("{id} missing from depth index at {}", slot.depth));
                }
            }
        }

        // Index contains nothing extra.
        let indexed: usize = self.depth_index.iter().map(BTreeSet::len).sum();
        if indexed != reachable {
            return fail(format!(
                "depth index holds {indexed} ids but {reachable} attached members exist"
            ));
        }

        // Attached members are exactly those reachable from the root
        // (also proves acyclicity of the attached part).
        let mut seen = 0usize;
        let mut frontier = vec![self.root];
        let mut visited = BTreeSet::new();
        while let Some(n) = frontier.pop() {
            if !visited.insert(n) {
                return fail(format!("cycle through {n}"));
            }
            seen += 1;
            frontier.extend(self.children(n).iter().copied());
        }
        if seen != reachable {
            return fail(format!(
                "{seen} members reachable from root but {reachable} marked attached"
            ));
        }

        // Orphan roots really are detached roots.
        for &o in &self.orphan_roots {
            match self.nodes.get(&o) {
                Some(s) if s.parent.is_none() && !s.attached => {}
                _ => return fail(format!("{o} is not a valid orphan root")),
            }
        }
        Ok(())
    }
}
}

/// One randomized mutation; picks are resolved against the current state
/// (identical in both trees by induction, so both see the same concrete
/// operation).
#[derive(Debug, Clone)]
enum Op {
    Attach { bw_tenths: u8, pick: u16 },
    Remove { pick: u16 },
    Reattach { pick: u16, parent_pick: u16 },
    Swap { pick: u16 },
    Replace { bw_tenths: u8, pick: u16 },
    Usurp { pick: u16, evict_pick: u16 },
    SetBandwidth { bw_tenths: u8, pick: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>()).prop_map(|(bw_tenths, pick)| Op::Attach { bw_tenths, pick }),
        2 => any::<u16>().prop_map(|pick| Op::Remove { pick }),
        2 => (any::<u16>(), any::<u16>()).prop_map(|(pick, parent_pick)| Op::Reattach { pick, parent_pick }),
        2 => any::<u16>().prop_map(|pick| Op::Swap { pick }),
        1 => (any::<u8>(), any::<u16>()).prop_map(|(bw_tenths, pick)| Op::Replace { bw_tenths, pick }),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(pick, evict_pick)| Op::Usurp { pick, evict_pick }),
        1 => (any::<u8>(), any::<u16>()).prop_map(|(bw_tenths, pick)| Op::SetBandwidth { bw_tenths, pick }),
    ]
}

fn pick_from(items: &[NodeId], pick: u16) -> Option<NodeId> {
    if items.is_empty() {
        None
    } else {
        Some(items[pick as usize % items.len()])
    }
}

fn profile(id: u64, bw: f64) -> MemberProfile {
    MemberProfile::new(NodeId(id), bw, SimTime::ZERO, 1e6, Location(id as u32))
}

/// Every public observation of the two representations must agree.
fn assert_equivalent(new: &MulticastTree, old: &old_model::MulticastTree) {
    assert_eq!(new.check_invariants(), Ok(()));
    assert_eq!(old.check_invariants(), Ok(()));

    let ids_new: Vec<NodeId> = new.member_ids().collect();
    let ids_old: Vec<NodeId> = old.member_ids().collect();
    assert_eq!(ids_new, ids_old, "member_ids diverged");

    assert_eq!(new.len(), old.len());
    assert_eq!(new.attached_count(), old.attached_count());
    assert_eq!(new.max_depth(), old.max_depth());
    assert_eq!(new.root(), old.root());

    let orphans_new: Vec<NodeId> = new.orphan_roots().collect();
    let orphans_old: Vec<NodeId> = old.orphan_roots().collect();
    assert_eq!(orphans_new, orphans_old, "orphan_roots diverged");

    let bfs_new: Vec<NodeId> = new.attached_by_depth().collect();
    let bfs_old: Vec<NodeId> = old.attached_by_depth().collect();
    assert_eq!(bfs_new, bfs_old, "attached_by_depth diverged");

    for depth in 0..=new.max_depth() {
        let layer_new: Vec<NodeId> = new.layer(depth).collect();
        let layer_old: Vec<NodeId> = old.layer(depth).collect();
        assert_eq!(layer_new, layer_old, "layer {depth} diverged");
    }

    assert!(
        (new.mean_internal_out_degree() - old.mean_internal_out_degree()).abs() < 1e-12,
        "mean_internal_out_degree diverged"
    );

    for &id in &ids_new {
        assert_eq!(new.parent(id), old.parent(id), "parent({id:?})");
        assert_eq!(new.depth(id), old.depth(id), "depth({id:?})");
        assert_eq!(new.is_attached(id), old.is_attached(id));
        assert_eq!(new.capacity(id), old.capacity(id));
        assert_eq!(new.free_slots(id), old.free_slots(id));
        let kids_new: Vec<NodeId> = new.children(id).collect();
        let kids_old: Vec<NodeId> = old.children(id).to_vec();
        assert_eq!(kids_new, kids_old, "children({id:?}) order diverged");
        assert_eq!(new.child_count(id), kids_old.len());
        assert_eq!(
            new.descendants(id),
            old.descendants(id),
            "descendants({id:?}) walk order diverged"
        );
        assert_eq!(new.subtree_size(id), old.subtree_size(id));
        assert_eq!(new.ancestors(id), old.ancestors(id));
        assert_eq!(new.overlay_path(id), old.overlay_path(id));
        assert_eq!(
            new.profile(id).map(|p| p.bandwidth),
            old.profile(id).map(|p| p.bandwidth)
        );
    }
}

/// Applies `op` to both representations, asserting that fallible calls
/// return identical outcomes (success payloads and errors alike).
fn apply_both(
    new: &mut MulticastTree,
    old: &mut old_model::MulticastTree,
    op: &Op,
    next_id: &mut u64,
) {
    // Resolution uses only observations already proven equivalent.
    let free_parents: Vec<NodeId> = new
        .attached_by_depth()
        .filter(|&n| new.has_free_slot(n))
        .collect();
    let non_root: Vec<NodeId> = new
        .attached_by_depth()
        .filter(|&n| n != new.root())
        .collect();
    let orphans: Vec<NodeId> = new.orphan_roots().collect();
    match *op {
        Op::Attach { bw_tenths, pick } => {
            if let Some(parent) = pick_from(&free_parents, pick) {
                let bw = f64::from(bw_tenths) / 10.0;
                let a = new.attach(profile(*next_id, bw), parent);
                let b = old.attach(profile(*next_id, bw), parent);
                assert_eq!(a, b, "attach outcome diverged");
                *next_id += 1;
            }
        }
        Op::Remove { pick } => {
            let mut victims: Vec<NodeId> =
                new.member_ids().filter(|&n| n != new.root()).collect();
            victims.sort();
            if let Some(v) = pick_from(&victims, pick) {
                let a = new.remove(v).expect("known non-root member");
                let b = old.remove(v).expect("known non-root member");
                assert_eq!(a.profile, b.profile);
                assert_eq!(a.orphaned_children, b.orphaned_children);
                assert_eq!(a.affected_descendants, b.affected_descendants);
            }
        }
        Op::Reattach { pick, parent_pick } => {
            if let (Some(o), Some(p)) = (
                pick_from(&orphans, pick),
                pick_from(&free_parents, parent_pick),
            ) {
                let a = new.reattach(o, p);
                let b = old.reattach(o, p);
                assert_eq!(a, b, "reattach outcome diverged");
            }
        }
        Op::Swap { pick } => {
            if let Some(n) = pick_from(&non_root, pick) {
                let a = new.swap_with_parent(n, |p| p.bandwidth);
                let b = old.swap_with_parent(n, |p| p.bandwidth);
                match (a, b) {
                    (Ok(ra), Ok(rb)) => {
                        assert_eq!(ra.promoted, rb.promoted);
                        assert_eq!(ra.demoted, rb.demoted);
                        assert_eq!(ra.parent_changes, rb.parent_changes);
                        assert_eq!(ra.reparented, rb.reparented);
                        assert_eq!(ra.spilled_to_promoted, rb.spilled_to_promoted);
                        assert_eq!(ra.displaced, rb.displaced);
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    (a, b) => panic!("swap outcome diverged: {a:?} vs {b:?}"),
                }
            }
        }
        Op::Replace { bw_tenths, pick } => {
            if let Some(t) = pick_from(&non_root, pick) {
                let bw = f64::from(bw_tenths) / 10.0;
                let a = new.replace(t, profile(*next_id, bw), |p| p.bandwidth);
                let b = old.replace(t, profile(*next_id, bw), |p| p.bandwidth);
                compare_replace(a, b);
                *next_id += 1;
            }
        }
        Op::Usurp { pick, evict_pick } => {
            if let (Some(o), Some(t)) = (pick_from(&orphans, pick), pick_from(&non_root, evict_pick)) {
                let a = new.usurp(t, o, |p| p.bandwidth);
                let b = old.usurp(t, o, |p| p.bandwidth);
                compare_replace(a, b);
            }
        }
        Op::SetBandwidth { bw_tenths, pick } => {
            if let Some(t) = pick_from(&non_root, pick) {
                let bw = f64::from(bw_tenths) / 10.0;
                let a = new.set_bandwidth(t, bw);
                let b = old.set_bandwidth(t, bw);
                assert_eq!(a, b, "set_bandwidth outcome diverged");
            }
        }
    }
}

fn compare_replace(
    a: Result<rom_overlay::ReplaceOutcome, TreeError>,
    b: Result<old_model::ReplaceOutcome, TreeError>,
) {
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            assert_eq!(ra.displaced, rb.displaced);
            assert_eq!(ra.adopted, rb.adopted);
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb),
        (a, b) => panic!("replace/usurp outcome diverged: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The arena tree and the pre-arena BTreeMap tree are observationally
    /// indistinguishable under arbitrary mutation sequences.
    #[test]
    fn arena_matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..140)) {
        let mut new = MulticastTree::new(profile(0, 4.0), 1.0);
        let mut old = old_model::MulticastTree::new(profile(0, 4.0), 1.0);
        let mut next_id = 1u64;
        assert_equivalent(&new, &old);
        for op in &ops {
            apply_both(&mut new, &mut old, op, &mut next_id);
            assert_equivalent(&new, &old);
        }
    }
}
