//! Scale-regression wall for the indexed tree hot paths (PR 8) and the
//! ladder event queue at million-pending depth (PR 10).
//!
//! Before the per-depth eviction indices and the incremental switch
//! restamp, the ROST switch cost O(subtree) and the centralized eviction
//! search cost O(M) per probe — at 100 000 members a single switch took
//! milliseconds. This wall builds churned trees at 1k and 100k members and
//! asserts the per-op costs stay within a fixed multiple of the 1k cost,
//! i.e. the operations scale (poly)logarithmically, not linearly.
//!
//! Two layers of machine normalization keep the wall portable:
//!
//! - the headline bound is a *ratio* (100k cost over 1k cost, measured
//!   back to back in one process), which cancels CPU speed exactly;
//! - the absolute backstops are denominated in `calibration_spin_ns`
//!   units — the same fixed integer spin `headline_claims` records into
//!   `BENCH_headline.json` for the perf smoke — so they track single-core
//!   speed to first order instead of assuming this machine's nanoseconds.
//!
//! Timing in unoptimized builds measures the compiler, not the algorithm,
//! so the scale test is ignored under `debug_assertions` and CI runs it in
//! a dedicated release job (`mega-smoke`). The builder-equivalence test
//! runs everywhere.

// The fixed single-core integer spin every `BENCH_*.json` baseline
// records as `calibration_spin_ns`; the absolute backstops below are
// denominated in these machine-relative units.
use rom_bench::calibration_spin_ns;
use rom_overlay::{Location, MemberProfile, MulticastTree, NodeId};
use rom_sim::{EventQueue, SimRng, SimTime};
use rom_stats::BoundedPareto;
use std::hint::black_box;
use std::time::Instant;

/// The paper-bandwidth member population used by `benches/tree.rs`,
/// reproduced byte-for-byte (same seed discipline) so this wall guards the
/// same trees the committed `BENCH_tree.json` numbers came from.
fn profile_for(id: u64, bw: f64) -> MemberProfile {
    // Clamp below at one slot: with the capped source, a run of
    // free-riders could otherwise exhaust the capacity pool mid-build.
    MemberProfile::new(
        NodeId(id),
        bw.max(1.0),
        SimTime::from_secs(id as f64),
        1e9,
        Location(id as u32),
    )
}

/// Frontier-cursor builder — the amortized-O(1)-per-attach construction
/// `benches/tree.rs` uses. Attach order coincides with breadth-first
/// (depth, id) order (depths are assigned non-decreasing in id) and a
/// filled node never regains capacity during the build, so the shallowest
/// free parent only ever moves forward through the attach order.
fn build_cursor(n: u64, seed: u64) -> MulticastTree {
    let mut rng = SimRng::seed_from(seed);
    let bw = BoundedPareto::paper_bandwidth();
    let source = MemberProfile::new(NodeId::SOURCE, 8.0, SimTime::ZERO, 1e9, Location(0));
    let mut tree = MulticastTree::new(source, 1.0);
    let mut order: Vec<NodeId> = vec![NodeId::SOURCE];
    let mut cursor = 0usize;
    for id in 1..=n {
        let profile = profile_for(id, bw.sample(&mut rng));
        while !tree.has_free_slot(order[cursor]) {
            cursor += 1;
        }
        tree.attach(profile, order[cursor]).expect("valid parent");
        order.push(NodeId(id));
    }
    tree
}

/// The pre-PR-8 builder: a full breadth-first scan for the first free
/// parent on every attach. O(M) per attach — kept here only as the
/// reference the cursor builder is checked against.
fn build_scan(n: u64, seed: u64) -> MulticastTree {
    let mut rng = SimRng::seed_from(seed);
    let bw = BoundedPareto::paper_bandwidth();
    let source = MemberProfile::new(NodeId::SOURCE, 8.0, SimTime::ZERO, 1e9, Location(0));
    let mut tree = MulticastTree::new(source, 1.0);
    for id in 1..=n {
        let profile = profile_for(id, bw.sample(&mut rng));
        let parent = tree
            .attached_by_depth()
            .find(|&p| tree.has_free_slot(p))
            .expect("capacity available");
        tree.attach(profile, parent).expect("valid parent");
    }
    tree
}

/// The cursor builder must produce the identical tree, not merely a valid
/// one: `BENCH_tree.json` rows are only comparable across PRs if the
/// benched tree shape is unchanged. Checked at a size where the O(M²)
/// reference is still affordable.
#[test]
fn cursor_builder_matches_scan_builder() {
    let n = 1_500;
    let fast = build_cursor(n, n);
    let slow = build_scan(n, n);
    for id in (0..=n).map(NodeId) {
        assert_eq!(fast.parent(id), slow.parent(id), "parent of {id:?}");
        assert_eq!(fast.depth(id), slow.depth(id), "depth of {id:?}");
    }
}

/// True when promoting `n` over its parent is legal: attached (detached
/// members of a displaced orphan subtree keep their internal parent
/// pointers, so a parent check alone is not enough), below depth 1, and
/// able to serve at least the demoted parent.
fn switchable(tree: &MulticastTree, n: NodeId) -> bool {
    tree.depth(n).is_some()
        && tree.parent(n).is_some_and(|p| p != tree.root())
        && tree.capacity(n) >= 1
}

/// True when a promote/demote round trip at `n` displaces nobody in either
/// direction (both capacities cover both fan-outs), so the pair restores
/// the tree's shape and can be repeated indefinitely by the timing loop.
fn cleanly_switchable(tree: &MulticastTree, n: NodeId) -> bool {
    if !switchable(tree, n) {
        return false;
    }
    let p = tree.parent(n).expect("switchable implies a parent");
    let fan = tree.child_count(n).max(tree.child_count(p));
    tree.capacity(n) >= fan && tree.capacity(p) >= fan
}

/// Applies attach/detach and switch churn so the measured indices carry
/// post-mutation state (re-keyed B-tree sets, recycled arena slots) rather
/// than a pristine monotone build.
fn churn(tree: &mut MulticastTree) {
    let parent = tree
        .attached_by_depth()
        .find(|&p| tree.has_free_slot(p))
        .expect("capacity available");
    for k in 0..1_000 {
        let id = NodeId(1_000_000 + k);
        let joiner = MemberProfile::new(id, 2.0, SimTime::ZERO, 1e9, Location(1));
        tree.attach(joiner, parent).expect("free slot");
        black_box(tree.remove(id).expect("known member"));
    }
    let candidates: Vec<NodeId> = tree
        .attached_by_depth()
        .filter(|&n| switchable(tree, n))
        .take(64)
        .collect();
    for cand in candidates {
        if !switchable(tree, cand) {
            continue;
        }
        let rec = tree
            .swap_with_parent(cand, |p| p.bandwidth)
            .expect("legal switch");
        // Best-effort restore; churn does not require the exact shape back.
        let _ = tree.swap_with_parent(rec.demoted, |p| p.bandwidth);
    }
    tree.check_invariants().expect("churned tree is coherent");
}

/// Best of 5 timed batches of `iters` calls, in ns per call (same harness
/// as `benches/tree.rs`).
fn measure<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// ns per single switch (half a promote/demote round trip).
fn switch_ns(tree: &mut MulticastTree) -> f64 {
    let cand = tree
        .attached_by_depth()
        .find(|&n| cleanly_switchable(tree, n))
        .expect("switchable node");
    measure(5_000, || {
        let rec = tree
            .swap_with_parent(cand, |p| p.bandwidth)
            .expect("legal switch");
        black_box(
            tree.swap_with_parent(rec.demoted, |p| p.bandwidth)
                .expect("legal switch back"),
        );
    }) / 2.0
}

/// ns per full eviction search: both ordered baselines' per-depth weakest
/// probes across every layer — exactly the work `find_eviction` does for a
/// joiner nobody loses to.
fn eviction_ns(tree: &MulticastTree) -> f64 {
    let now = SimTime::from_secs(1e6);
    measure(5_000, || {
        let mut acc = 0u64;
        for depth in 1..=tree.max_depth() {
            if let Some((bw, id)) = tree.weakest_by_bandwidth(depth) {
                acc ^= id.0 ^ bw.to_bits();
            }
            if let Some((age, id)) = tree.weakest_by_age(depth, now) {
                acc ^= id.0 ^ age.to_bits();
            }
        }
        black_box(acc);
    })
}


/// The scale wall proper. Bounds are loose by design — roughly 10× the
/// ratios observed on the reference machine (~1× switch, ~2× eviction) —
/// so scheduler noise cannot trip them, while the pre-index behavior
/// (switch ~6 000× the 1k cost, eviction ~100×) fails by orders of
/// magnitude.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing wall; run in release (CI mega-smoke job)"
)]
fn hundred_k_ops_stay_within_a_fixed_multiple_of_1k() {
    let mut small = build_cursor(1_000, 1_000);
    let mut big = build_cursor(100_000, 100_000);
    churn(&mut small);
    churn(&mut big);

    let spin = calibration_spin_ns();
    let switch_small = switch_ns(&mut small);
    let switch_big = switch_ns(&mut big);
    let evict_small = eviction_ns(&small);
    let evict_big = eviction_ns(&big);
    println!(
        "mega_smoke: spin {spin:.2} ns/iter | switch 1k {switch_small:.0} ns \
         -> 100k {switch_big:.0} ns | eviction 1k {evict_small:.0} ns \
         -> 100k {evict_big:.0} ns"
    );

    let switch_ratio = switch_big / switch_small;
    assert!(
        switch_ratio <= 10.0,
        "switch cost grew {switch_ratio:.1}x from 1k to 100k members \
         ({switch_small:.0} ns -> {switch_big:.0} ns); the incremental \
         restamp should keep it near-flat"
    );
    let evict_ratio = evict_big / evict_small;
    assert!(
        evict_ratio <= 10.0,
        "eviction search grew {evict_ratio:.1}x from 1k to 100k members \
         ({evict_small:.0} ns -> {evict_big:.0} ns); the per-depth indices \
         should keep it O(depth log layer)"
    );

    // Absolute backstops in spin units, in case both sizes regress
    // together (a ratio cannot see that). The old full-subtree restamp
    // put a 100k switch near 2 000 000 spin units.
    assert!(
        switch_big <= 20_000.0 * spin,
        "100k switch took {switch_big:.0} ns (> 20k spin units at \
         {spin:.2} ns/spin)"
    );
    assert!(
        evict_big <= 200_000.0 * spin,
        "100k eviction search took {evict_big:.0} ns (> 200k spin units at \
         {spin:.2} ns/spin)"
    );
}

/// Bounded-cost wall for the ladder event queue at `--mega` depth (PR 10):
/// one million pending events, the regime the old `BinaryHeap` kernel paid
/// O(log n) sift costs in. Three phases — bulk fill, a hold-model
/// steady state (pop one, schedule its successor: the canonical DES
/// access pattern the ladder is O(1) amortized on), and a full drain —
/// each bounded in calibration-spin units so the wall tracks machine
/// speed. A deterministic footprint bound rides along:
/// `bytes_high_water` is exact, and the process peak RSS gets a loose
/// sanity ceiling (other tests in this binary share the process, so the
/// RSS bound only catches catastrophic blowup).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing wall; run in release (CI mega-smoke job)"
)]
fn million_pending_queue_ops_stay_bounded() {
    const N: u64 = 1_000_000;
    let spin = calibration_spin_ns();
    let mut q: EventQueue<u64> = EventQueue::with_capacity(N as usize);

    // Deterministic mostly-monotone schedule: exponential-ish holds drawn
    // from a xorshift stream, exactly the shape a churn run produces.
    let mut x = 0x2545_f491_4f6c_dd1d_u64;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64 * 10.0
    };

    let start = Instant::now();
    let mut now = SimTime::ZERO;
    for i in 0..N {
        now += step();
        q.push(now, i);
    }
    let fill_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let start = Instant::now();
    for i in 0..N {
        let (t, _) = q.pop().expect("queue holds a million events");
        q.push(t + step(), i);
    }
    let hold_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let start = Instant::now();
    let mut last = SimTime::ZERO;
    while let Some((t, _)) = q.pop() {
        assert!(t >= last, "drain went backwards: {t:?} < {last:?}");
        last = t;
    }
    let drain_ns = start.elapsed().as_nanos() as f64 / N as f64;

    println!(
        "mega_smoke: spin {spin:.2} ns/iter | 1M queue fill {fill_ns:.0} ns/op \
         | hold {hold_ns:.0} ns/op | drain {drain_ns:.0} ns/op | peak \
         {} bytes",
        q.bytes_high_water()
    );

    // ~100-300 spin units/op observed on the reference machine; 2000 is
    // the same 10x headroom discipline as the tree walls above. The old
    // heap kernel is not orders of magnitude worse here — this wall pins
    // the new kernel against future regressions, not against the heap.
    for (phase, ns) in [("fill", fill_ns), ("hold", hold_ns), ("drain", drain_ns)] {
        assert!(
            ns <= 2_000.0 * spin,
            "1M-pending queue {phase} took {ns:.0} ns/op (> 2000 spin units \
             at {spin:.2} ns/spin)"
        );
    }

    // Exact deterministic footprint: the peak level is the N entries of
    // the bulk fill (the hold phase pops before it pushes), each a
    // (key, seq, payload) triple — 24 bytes for a u64 payload.
    let expected = N as usize * 24;
    assert!(
        q.bytes_high_water() <= expected as u64,
        "queue peak footprint {} bytes exceeds the audited {} (entry \
         layout grew?)",
        q.bytes_high_water(),
        expected
    );
    if let Some(rss) = rom_obs::peak_rss_bytes() {
        assert!(
            rss <= 4 << 30,
            "process peak RSS {rss} bytes (> 4 GiB) during the 1M queue wall"
        );
    }
}
