//! Failure injection on the referee mechanism (§3.4): referees are
//! maintained across continuous churn, verification stays truthful, and
//! audited switching keeps cheaters down while honest members climb.

use rom::overlay::{Location, MemberProfile, MulticastTree, NodeId};
use rom::rost::{
    attempt_audited, AuditRefusal, AuditedOutcome, RefereeRegistry, ResourceClaim, RostConfig,
    SwitchOutcome, SwitchingProtocol, Verification,
};
use rom::sim::{SimRng, SimTime};
use std::collections::HashSet;

struct RefereedOverlay {
    tree: MulticastTree,
    registry: RefereeRegistry,
    live: HashSet<NodeId>,
    rng: SimRng,
}

impl RefereedOverlay {
    fn new(seed: u64) -> Self {
        // A low-degree source (capacity 3) so the overlay actually grows
        // deep enough to exercise switching; the paper's capacity-100
        // source would absorb these small test populations at depth 1.
        let source = MemberProfile::new(NodeId(0), 3.0, SimTime::ZERO, 1e12, Location(0));
        let tree = MulticastTree::new(source, 1.0);
        let mut live = HashSet::new();
        live.insert(NodeId(0));
        RefereedOverlay {
            tree,
            registry: RefereeRegistry::new(2, 2, 5.0),
            live,
            rng: SimRng::seed_from(seed),
        }
    }

    /// Joins a member under the shallowest free parent; the parent
    /// appoints referees from the current membership, and the measurer
    /// set records the member's true bandwidth.
    fn join(&mut self, id: u64, bandwidth: f64, now: SimTime) {
        let profile = MemberProfile::new(NodeId(id), bandwidth, now, 1e9, Location(id as u32));
        let parent = self
            .tree
            .attached_by_depth()
            .find(|&p| self.tree.has_free_slot(p))
            .expect("capacity available");
        self.tree.attach(profile, parent).unwrap();
        self.live.insert(NodeId(id));

        let mut candidates: Vec<NodeId> = self
            .live
            .iter()
            .copied()
            .filter(|&m| m != NodeId(id))
            .collect();
        candidates.sort();
        // Bootstrap: while the overlay is tiny the source doubles as a
        // referee so the r > 1 redundancy requirement can be met.
        while candidates.len() < 2 {
            candidates.push(NodeId(0));
        }
        let age_refs = self.rng.sample(&candidates, 2);
        let bw_refs = self.rng.sample(&candidates, 2);
        self.registry
            .register_join(NodeId(id), now, &age_refs)
            .unwrap();
        // The measurer set observes the member's *actual* outbound rate,
        // split across three measurers.
        let partials = [bandwidth * 0.4, bandwidth * 0.35, bandwidth * 0.25];
        self.registry
            .record_bandwidth(NodeId(id), &partials, &bw_refs)
            .unwrap();
    }

    /// A member departs; its referee duties are re-assigned from
    /// survivors wherever possible.
    fn depart(&mut self, id: NodeId) {
        self.live.remove(&id);
        if self.tree.contains(id) && id != self.tree.root() {
            let removed = self.tree.remove(id).unwrap();
            // Reattach orphans at the shallowest free slots (min-depth).
            for orphan in removed.orphaned_children {
                let parent = self
                    .tree
                    .attached_by_depth()
                    .find(|&p| self.tree.has_free_slot(p))
                    .expect("capacity available");
                self.tree.reattach(orphan, parent).unwrap();
            }
        }
        self.registry.forget(id);
        // Every member that used `id` as a referee replaces it.
        let members: Vec<NodeId> = self.live.iter().copied().collect();
        for &m in &members {
            let age_refs = self.registry.age_referees_of(m);
            if age_refs.contains(&id) {
                let replacement = self.fresh_referee(m, id, &age_refs);
                self.registry
                    .replace_age_referee(m, id, replacement)
                    .unwrap();
            }
            let bw_refs = self.registry.bandwidth_referees_of(m);
            if bw_refs.contains(&id) {
                let replacement = self.fresh_referee(m, id, &bw_refs);
                self.registry
                    .replace_bandwidth_referee(m, id, replacement)
                    .unwrap();
            }
        }
    }

    /// Picks a live replacement that is neither the subject, the failed
    /// referee, nor one of the subject's current referees (a duplicate
    /// would silently collapse the redundancy the mechanism exists for).
    fn fresh_referee(&mut self, subject: NodeId, failed: NodeId, current: &[NodeId]) -> NodeId {
        let mut candidates: Vec<NodeId> = self
            .live
            .iter()
            .copied()
            .filter(|&m| m != subject && m != failed && !current.contains(&m))
            .collect();
        candidates.sort();
        *self.rng.choose(&candidates).expect("members remain")
    }

    fn is_live(&self) -> impl Fn(NodeId) -> bool + Copy + '_ {
        move |n| self.live.contains(&n)
    }
}

/// Referee records survive waves of churn: every live member's honest
/// claims keep verifying, at every step.
#[test]
fn verification_survives_referee_churn() {
    let mut overlay = RefereedOverlay::new(1);
    // Build up 30 members.
    for id in 1..=30u64 {
        overlay.join(id, 1.0 + (id % 5) as f64, SimTime::from_secs(id as f64));
    }
    // Waves: remove one, add one, re-verify everyone.
    for wave in 0..15u64 {
        let victim = NodeId(1 + (wave * 2) % 30);
        if overlay.live.contains(&victim) {
            overlay.depart(victim);
        }
        let new_id = 100 + wave;
        let now = SimTime::from_secs(100.0 + wave as f64 * 10.0);
        overlay.join(new_id, 2.0, now);

        let check_time = SimTime::from_secs(400.0);
        let mut live: Vec<NodeId> = overlay.live.iter().copied().collect();
        live.sort();
        for &m in live.iter().filter(|&&m| m != NodeId(0)) {
            let profile = overlay.tree.profile(m).expect("live member in tree");
            let age = profile.age(check_time);
            let is_live = overlay.is_live();
            assert!(
                matches!(
                    overlay.registry.verify_age(m, age, check_time, is_live),
                    Verification::Confirmed { .. }
                ),
                "wave {wave}: honest age claim of {m} must verify"
            );
            assert!(
                matches!(
                    overlay
                        .registry
                        .verify_bandwidth(m, profile.bandwidth, is_live),
                    Verification::Confirmed { .. }
                ),
                "wave {wave}: honest bandwidth claim of {m} must verify"
            );
            // Inflation is still caught after all that churn.
            assert!(!matches!(
                overlay
                    .registry
                    .verify_bandwidth(m, profile.bandwidth * 10.0 + 5.0, is_live),
                Verification::Confirmed { .. }
            ));
        }
    }
}

/// Audited switching over a churned, refereed overlay: honest eligible
/// members get promoted; a cheater with inflated claims is refused every
/// single time.
#[test]
fn audited_switching_over_churned_overlay() {
    let mut overlay = RefereedOverlay::new(2);
    for id in 1..=20u64 {
        overlay.join(
            id,
            1.0 + (id % 4) as f64,
            SimTime::from_secs(id as f64 * 5.0),
        );
    }
    let mut protocol = SwitchingProtocol::new(RostConfig::paper());
    let now = SimTime::from_secs(5_000.0);

    let members: Vec<NodeId> = overlay.tree.attached_by_depth().collect();
    let mut promotions = 0;
    let mut refusals = 0;
    for &m in members.iter().filter(|&&m| m != NodeId(0)) {
        // Honest claim first.
        let claim = ResourceClaim::honest(&overlay.tree, m, now).unwrap();
        let registry = overlay.registry.clone();
        let live = overlay.live.clone();
        match attempt_audited(
            &mut protocol,
            &registry,
            &mut overlay.tree,
            m,
            claim,
            now,
            |n| live.contains(&n),
        ) {
            AuditedOutcome::Proceeded(SwitchOutcome::Switched { op, .. }) => {
                protocol.release(op);
                promotions += 1;
                overlay.tree.check_invariants().unwrap();
            }
            AuditedOutcome::Proceeded(_) | AuditedOutcome::Refused(_) => {}
        }

        // A 100× inflated claim is always rejected, never mutating the
        // tree.
        let inflated = ResourceClaim {
            bandwidth: claim.bandwidth * 100.0,
            age_secs: claim.age_secs * 100.0,
        };
        match attempt_audited(
            &mut protocol,
            &registry,
            &mut overlay.tree,
            m,
            inflated,
            now,
            |n| live.contains(&n),
        ) {
            AuditedOutcome::Refused(
                AuditRefusal::BandwidthRejected | AuditRefusal::AgeRejected,
            ) => refusals += 1,
            other => panic!("inflated claim must be caught, got {other:?}"),
        }
    }
    assert!(promotions > 0, "some honest inversions should resolve");
    assert_eq!(refusals as usize, members.len() - 1, "every cheat caught");
}
