#!/usr/bin/env sh
# Perf-regression smoke: re-runs the headline sweep at --jobs 1 and fails
# when machine-normalized throughput drops more than ROM_PERF_TOLERANCE
# (default 0.20) below the committed BENCH_headline.json baseline. See
# crates/bench/src/bin/perf_smoke.rs for the normalization details.
# Also refreshes BENCH_tree.json (JSON-only fast path, no criterion
# statistics) and enforces the indexed-switch budget: the per-op switch
# cost must stay within 20 µs at 10k members (the pre-index full-subtree
# restamp cost ~1.8 ms there) and sub-linear from 10k to 100k.
set -eu
cd "$(dirname "$0")/.."

tolerance="${ROM_PERF_TOLERANCE:-0.20}"
baseline="${ROM_PERF_BASELINE:-BENCH_headline.json}"

saved="$(mktemp)"
trap 'rm -f "$saved"' EXIT
cp "$baseline" "$saved"

# headline_claims rewrites BENCH_headline.json in place; the committed
# numbers are already safe in $saved.
cargo run -q --release -p rom-bench --bin headline_claims -- --jobs 1 > /dev/null

cargo run -q --release -p rom-bench --bin perf_smoke -- \
  --baseline "$saved" --fresh BENCH_headline.json --tolerance "$tolerance"

# Tree-core switch bound. The 20 µs absolute budget carries ~70x headroom
# over the measured cost, so machine speed cannot trip it while the old
# O(subtree) restamp (two orders of magnitude over budget) still fails
# loudly; the 5x 10k->100k ratio bound is machine-free and catches any
# return to linear scaling.
ROM_BENCH_JSON_ONLY=1 cargo bench -q -p rom-bench --bench tree > /dev/null
awk '
  /"op": "switch"/ {
    for (i = 1; i <= NF; i++) {
      if ($i == "\"members\":") m = $(i + 1) + 0
      if ($i == "\"ns_per_op\":") ns = $(i + 1) + 0
    }
    cost[m] = ns
  }
  END {
    if (!(10000 in cost) || !(100000 in cost)) {
      print "error: BENCH_tree.json lacks switch rows at 10k/100k members" | "cat >&2"
      exit 1
    }
    printf "perf_smoke: switch 10k %.0f ns/op, 100k %.0f ns/op\n", cost[10000], cost[100000]
    if (cost[10000] > 20000) {
      printf "error: switch@10k %.0f ns exceeds the 20000 ns budget\n", cost[10000] | "cat >&2"
      exit 1
    }
    if (cost[100000] > 5 * cost[10000]) {
      printf "error: switch@100k %.0f ns is not sub-linear vs 10k (%.0f ns)\n", cost[100000], cost[10000] | "cat >&2"
      exit 1
    }
    print "perf_smoke: tree switch bound ok"
  }
' BENCH_tree.json
