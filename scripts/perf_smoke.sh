#!/usr/bin/env sh
# Perf-regression smoke: re-runs the headline sweep at --jobs 1 and fails
# when machine-normalized throughput drops more than ROM_PERF_TOLERANCE
# (default 0.20) below the committed BENCH_headline.json baseline. See
# crates/bench/src/bin/perf_smoke.rs for the normalization details.
set -eu
cd "$(dirname "$0")/.."

tolerance="${ROM_PERF_TOLERANCE:-0.20}"
baseline="${ROM_PERF_BASELINE:-BENCH_headline.json}"

saved="$(mktemp)"
trap 'rm -f "$saved"' EXIT
cp "$baseline" "$saved"

# headline_claims rewrites BENCH_headline.json in place; the committed
# numbers are already safe in $saved.
cargo run -q --release -p rom-bench --bin headline_claims -- --jobs 1 > /dev/null

cargo run -q --release -p rom-bench --bin perf_smoke -- \
  --baseline "$saved" --fresh BENCH_headline.json --tolerance "$tolerance"
