#!/usr/bin/env sh
# Runs rom-lint over the workspace (policy: lint.toml at the repo root).
#
# Usage:
#   scripts/lint.sh             # scan the workspace, exit non-zero on hits
#   scripts/lint.sh <path>...   # scan explicit paths with every rule
#
# Exit codes (from rom-lint): 0 clean, 1 violations, 2 config/I-O error.
set -eu

cd "$(dirname "$0")/.."
exec cargo run -q --release -p rom-lint -- "$@"
