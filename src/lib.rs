//! # rom — Resilient Overlay Multicast
//!
//! A from-scratch Rust reproduction of **"Improving the Fault Resilience
//! of Overlay Multicast for Media Streaming"** (Tan, Jarvis & Spooner,
//! DSN 2006): the **ROST** switching-tree algorithm, the **CER**
//! cooperative error-recovery protocol, the four baseline algorithms the
//! paper compares against, and the full simulation stack (event kernel,
//! GT-ITM-style transit-stub underlay, workload model, experiment
//! engines) needed to regenerate every evaluation figure.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module of the same name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `rom-sim` | event queue, virtual clock, deterministic RNG |
//! | [`obs`] | `rom-obs` | structured traces, metrics, run manifests |
//! | [`net`] | `rom-net` | transit-stub topologies, Dijkstra, delay oracle |
//! | [`stats`] | `rom-stats` | Bounded Pareto, lognormal, summaries, CDFs |
//! | [`overlay`] | `rom-overlay` | members, multicast tree, baseline algorithms |
//! | [`rost`] | `rom-rost` | BTP switching, locks, referees |
//! | [`cer`] | `rom-cer` | MLC groups, ELN, striped repair, buffers |
//! | [`engine`] | `rom-engine` | churn & streaming simulators, experiment configs |
//! | [`wire`] | `rom-wire` | protocol messages, binary codec, in-memory peer harness |
//! | [`chaos`] | `rom-chaos` | fault-injection scenarios, runtime invariant registry |
//!
//! # Quickstart
//!
//! Compare ROST against minimum-depth on a small overlay:
//!
//! ```
//! use rom::engine::{AlgorithmKind, ChurnConfig, ChurnSim};
//!
//! let mut cfg = ChurnConfig::quick(AlgorithmKind::Rost, 200);
//! cfg.warmup_secs = 120.0;
//! cfg.measure_secs = 300.0;
//! let report = ChurnSim::new(cfg).run();
//! println!(
//!     "ROST: {:.2} disruptions per mean lifetime",
//!     report.disruptions_per_mean_lifetime()
//! );
//! # assert!(report.population.mean() > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! figure-regeneration harness.

pub use rom_cer as cer;
pub use rom_chaos as chaos;
pub use rom_engine as engine;
pub use rom_net as net;
pub use rom_obs as obs;
pub use rom_overlay as overlay;
pub use rom_rost as rost;
pub use rom_sim as sim;
pub use rom_stats as stats;
pub use rom_wire as wire;
